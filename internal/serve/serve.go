// Package serve is the HTTP face of the multi-stream monitoring hub: the
// versioned `/v1` REST API (wire types in internal/client, the protocol's
// single source of truth) plus the frozen unversioned legacy routes kept
// as aliases for pre-`/v1` clients.
//
//	POST   /v1/streams            register a stream (kind or spec, engine, geometry)
//	GET    /v1/streams            list streams with live stats
//	GET    /v1/streams/{id}       one stream's description
//	POST   /v1/streams/{id}/push  batch ingest {"points":[...]}; +"at" = positioned replay
//	DELETE /v1/streams/{id}       detach; returns the final report
//	GET    /v1/streams/{id}/watch live settled-detection feed (SSE; ?format=ndjson)
//	GET    /v1/streams/{id}/snapshot   export the stream's durable state
//	POST   /v1/streams/{id}/snapshot   recreate a stream from a snapshot
//	GET    /v1/stats              hub totals
//	GET    /v1/detections?stream=ID&since=N   cursor-paged detections
//	GET    /v1/healthz            readiness probe (503 while boot restore runs)
//	GET    /metrics               Prometheus text exposition (after EnableMetrics)
//
// Every `/v1` failure is a structured JSON error
// {"error":{"code":"...","message":"..."}} with a machine-readable code
// (client.ErrorCode). Unlike the legacy `/push`, `/v1` registration is
// explicit: pushing to an unregistered stream is CodeUnknownStream, not a
// lazy attach — a production fleet should not materialize pipelines from
// typos.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"etsc/internal/client"
	"etsc/internal/etsc"
	"etsc/internal/hub"
	"etsc/internal/metrics"
	"etsc/internal/stream"
)

// maxBody bounds one request's body (~32 MB ≈ 1.5M points as text) so a
// single client cannot balloon process memory.
const maxBody = 32 << 20

// streamHub is the slice of the hub surface the HTTP layer drives;
// *hub.Hub and *hub.ShardedHub both satisfy it, so one handler set serves
// both shapes. Routing is the hub's own: every method takes the stream ID,
// and the sharded hub hashes it to the owning shard internally — the /v1
// layer and the hub can never disagree on placement.
type streamHub interface {
	Attach(id string, sc hub.StreamConfig) error
	Push(id string, points []float64) error
	PushAt(id string, at int, points []float64) error
	Export(id string) ([]byte, error)
	Restore(data []byte, sc hub.StreamConfig) (string, error)
	Detach(id string) (hub.StreamReport, error)
	Snapshot() map[string]hub.StreamStats
	Stats() hub.Totals
	Detections(id string) ([]stream.Detection, error)
	DetectionsSettled(id string) ([]stream.Detection, int, error)
	Watch(id string, since int) (*hub.Watch, error)
}

// Server routes HTTP traffic onto one hub — flat or sharded. Streams
// registered through `/v1` and streams lazily attached through the legacy
// `/push` share the hub and are visible to both APIs.
type Server struct {
	hub streamHub
	// sharded is non-nil when the hub is a ShardedHub; it feeds the
	// per-shard half of /v1/stats and the Shard field of StreamInfo.
	sharded *hub.ShardedHub
	kinds   map[string]hub.Kind
	deflt   string
	mux     *http.ServeMux
	// reg is the /metrics registry, nil until EnableMetrics; handlers
	// read it through the atomic-friendly accessor under s.mu.
	reg *metrics.Registry

	mu   sync.Mutex
	meta map[string]streamMeta

	// Checkpoint counters (see checkpoint.go); exposed via /metrics.
	ckptWrites    atomic.Int64
	ckptRestored  atomic.Int64
	ckptFallbacks atomic.Int64
	ckptSkipped   atomic.Int64

	// restoring counts boot-restore passes in flight; /v1/healthz answers
	// 503/unavailable while it is non-zero so health probers (the router
	// front tier) do not route traffic at a half-restored fleet.
	restoring atomic.Int32
}

// streamMeta is the registration-time description of an attached stream.
type streamMeta struct {
	kind   string
	spec   string
	engine string
}

// New builds the handler over an attached hub and the kinds it serves.
// The first kind is the default for requests that name none.
func New(h *hub.Hub, kinds []hub.Kind) (*Server, error) {
	return newServer(h, nil, kinds)
}

// NewSharded is New over a sharded hub: identical routes and transcripts,
// plus the shard-aware extras — GET /v1/stats carries per-shard totals
// (queue backlog, drops) and StreamInfo reports each stream's owning
// shard.
func NewSharded(h *hub.ShardedHub, kinds []hub.Kind) (*Server, error) {
	return newServer(h, h, kinds)
}

func newServer(h streamHub, sharded *hub.ShardedHub, kinds []hub.Kind) (*Server, error) {
	if len(kinds) == 0 {
		return nil, errors.New("serve: no stream kinds")
	}
	s := &Server{
		hub:     h,
		sharded: sharded,
		kinds:   map[string]hub.Kind{},
		deflt:   kinds[0].Name,
		meta:    map[string]streamMeta{},
	}
	for _, k := range kinds {
		if _, dup := s.kinds[k.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate kind %q", k.Name)
		}
		s.kinds[k.Name] = k
	}
	mux := http.NewServeMux()
	// The versioned API. One prefix handler keeps full control over
	// method dispatch so 404/405 carry structured bodies too.
	mux.HandleFunc("/v1/", s.handleV1)
	// Prometheus text exposition; 404s until EnableMetrics is called.
	mux.HandleFunc("/metrics", s.handleMetrics)
	// Legacy aliases, frozen: text bodies in, plain-text errors out,
	// lazy attachment on first push.
	mux.HandleFunc("/push", s.handleLegacyPush)
	mux.HandleFunc("/stats", s.handleLegacyStats)
	mux.HandleFunc("/streams", s.handleLegacyStreams)
	mux.HandleFunc("/detections", s.handleLegacyDetections)
	mux.HandleFunc("/detach", s.handleLegacyDetach)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// KindNames lists the served kinds, sorted.
func (s *Server) KindNames() []string {
	out := make([]string, 0, len(s.kinds))
	for name := range s.kinds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---- /v1 routing ----

// handleV1 dispatches /v1/... paths manually: the error contract (JSON
// envelope with a code on every failure, including 404 and 405) is part
// of the protocol, so routing misses cannot fall through to the mux's
// plain-text defaults.
func (s *Server) handleV1(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/")
	seg := strings.Split(rest, "/")
	switch {
	case rest == "streams":
		switch r.Method {
		case http.MethodPost:
			s.v1CreateStream(w, r)
		case http.MethodGet:
			s.v1ListStreams(w)
		default:
			writeAPIError(w, methodNotAllowed(r, http.MethodGet, http.MethodPost))
		}
	case len(seg) == 2 && seg[0] == "streams" && seg[1] != "":
		id := seg[1]
		switch r.Method {
		case http.MethodGet:
			s.v1GetStream(w, id)
		case http.MethodDelete:
			s.v1DeleteStream(w, id)
		default:
			writeAPIError(w, methodNotAllowed(r, http.MethodGet, http.MethodDelete))
		}
	case len(seg) == 3 && seg[0] == "streams" && seg[1] != "" && seg[2] == "push":
		if r.Method != http.MethodPost {
			writeAPIError(w, methodNotAllowed(r, http.MethodPost))
			return
		}
		s.v1Push(w, r, seg[1])
	case len(seg) == 3 && seg[0] == "streams" && seg[1] != "" && seg[2] == "snapshot":
		switch r.Method {
		case http.MethodGet:
			s.v1SnapshotStream(w, seg[1])
		case http.MethodPost:
			s.v1RestoreStream(w, r, seg[1])
		default:
			writeAPIError(w, methodNotAllowed(r, http.MethodGet, http.MethodPost))
		}
	case len(seg) == 3 && seg[0] == "streams" && seg[1] != "" && seg[2] == "watch":
		if r.Method != http.MethodGet {
			writeAPIError(w, methodNotAllowed(r, http.MethodGet))
			return
		}
		s.v1Watch(w, r, seg[1])
	case rest == "healthz":
		if r.Method != http.MethodGet {
			writeAPIError(w, methodNotAllowed(r, http.MethodGet))
			return
		}
		s.v1Healthz(w)
	case rest == "stats":
		if r.Method != http.MethodGet {
			writeAPIError(w, methodNotAllowed(r, http.MethodGet))
			return
		}
		resp := client.StatsResponse{Totals: s.hub.Stats()}
		if s.sharded != nil {
			resp.Shards = s.sharded.ShardTotals()
		}
		writeJSON(w, http.StatusOK, resp)
	case rest == "detections":
		if r.Method != http.MethodGet {
			writeAPIError(w, methodNotAllowed(r, http.MethodGet))
			return
		}
		s.v1Detections(w, r)
	default:
		writeAPIError(w, &client.APIError{
			Status:  http.StatusNotFound,
			Code:    client.CodeNotFound,
			Message: fmt.Sprintf("no /v1 endpoint %q", r.URL.Path),
		})
	}
}

// v1Healthz is the router-facing probe (GET /v1/healthz): a cheap 200
// once the server is ready, 503/unavailable while a boot-time checkpoint
// restore is still in flight. Readiness, not just liveness — a prober
// must not route traffic at a fleet member that has not finished
// rebuilding its streams.
func (s *Server) v1Healthz(w http.ResponseWriter) {
	if s.restoring.Load() > 0 {
		writeAPIError(w, &client.APIError{
			Status:  http.StatusServiceUnavailable,
			Code:    client.CodeUnavailable,
			Message: "checkpoint restore in flight; not ready",
		})
		return
	}
	writeJSON(w, http.StatusOK, client.Health{Status: "ok", Streams: s.hub.Stats().Streams})
}

// v1CreateStream registers a stream from a declarative description: a
// served kind for the pipeline defaults, an optional etsc spec retrained
// on the kind's training set, and per-stream engine/geometry overrides.
func (s *Server) v1CreateStream(w http.ResponseWriter, r *http.Request) {
	var req client.CreateStreamRequest
	if apiErr := decodeJSON(r, w, &req); apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	if req.ID == "" {
		writeAPIError(w, badRequest("missing stream id"))
		return
	}
	// Ids live in /v1/streams/{id}/... path segments; one containing a
	// slash would register fine and then be unroutable (the decoded
	// request path splits on it), and "." / ".." are rewritten away by
	// the mux's path cleaning. Reject them all at registration.
	if strings.Contains(req.ID, "/") || req.ID == "." || req.ID == ".." {
		writeAPIError(w, badRequest(fmt.Sprintf("stream id %q must be a single path segment (no '/', not %q or %q)", req.ID, ".", "..")))
		return
	}
	kindName := req.Kind
	if kindName == "" {
		kindName = s.deflt
	}
	kind, ok := s.kinds[kindName]
	if !ok {
		writeAPIError(w, &client.APIError{
			Status:  http.StatusBadRequest,
			Code:    client.CodeUnknownKind,
			Message: fmt.Sprintf("unknown kind %q (served: %s)", kindName, strings.Join(s.KindNames(), ", ")),
		})
		return
	}

	sc := kind.Config
	specStr := kind.Spec.String()
	if req.Spec != "" {
		// A per-stream spec replaces the kind's classifier, trained
		// against the kind's training set through the registry.
		override, err := specStreamConfig(kind, req.Spec)
		if err != nil {
			writeAPIError(w, &client.APIError{
				Status:  http.StatusBadRequest,
				Code:    client.CodeBadSpec,
				Message: err.Error(),
			})
			return
		}
		sc = override
		specStr = req.Spec
	}
	if req.Engine != "" {
		mode, err := etsc.ParseEngineMode(req.Engine)
		if err != nil {
			writeAPIError(w, badRequest(err.Error()))
			return
		}
		sc.Engine = mode
	}
	if req.Stride != nil {
		sc.Stride = *req.Stride
	}
	if req.Step != nil {
		sc.Step = *req.Step
	}
	if req.Suppress != nil {
		sc.Suppress = *req.Suppress
	}

	meta := streamMeta{kind: kind.Name, spec: specStr, engine: sc.Engine.String()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.hub.Attach(req.ID, sc); err != nil {
		writeAPIError(w, attachError(err))
		return
	}
	s.meta[req.ID] = meta
	writeJSON(w, http.StatusCreated, s.infoLocked(req.ID, hub.StreamStats{}))
}

// infoLocked renders one stream's StreamInfo; s.mu must be held.
func (s *Server) infoLocked(id string, stats hub.StreamStats) client.StreamInfo {
	m := s.meta[id]
	shard := 0
	if s.sharded != nil {
		shard = s.sharded.ShardFor(id)
	}
	return client.StreamInfo{ID: id, Kind: m.kind, Spec: m.spec, Engine: m.engine, Shard: shard, Stats: stats}
}

func (s *Server) v1ListStreams(w http.ResponseWriter) {
	snap := s.hub.Snapshot()
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := client.StreamList{Streams: make([]client.StreamInfo, 0, len(ids))}
	s.mu.Lock()
	for _, id := range ids {
		out.Streams = append(out.Streams, s.infoLocked(id, snap[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) v1GetStream(w http.ResponseWriter, id string) {
	snap := s.hub.Snapshot()
	stats, ok := snap[id]
	if !ok {
		writeAPIError(w, unknownStream(id))
		return
	}
	s.mu.Lock()
	info := s.infoLocked(id, stats)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) v1Push(w http.ResponseWriter, r *http.Request, id string) {
	var req client.PushRequest
	if apiErr := decodeJSON(r, w, &req); apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	var err error
	if req.At != nil {
		// Positioned replay: points below the stream's watermark are
		// skipped, a gap beyond it is refused — see client.PushRequest.At.
		if *req.At < 0 {
			writeAPIError(w, badRequest(fmt.Sprintf("bad at=%d: want a non-negative position", *req.At)))
			return
		}
		err = s.hub.PushAt(id, *req.At, req.Points)
	} else {
		err = s.hub.Push(id, req.Points)
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, client.PushResponse{Stream: id, Queued: len(req.Points)})
	case errors.Is(err, hub.ErrGap):
		writeAPIError(w, &client.APIError{
			Status:  http.StatusConflict,
			Code:    client.CodeGap,
			Message: err.Error(),
		})
	case errors.Is(err, hub.ErrDropped):
		// Backpressure is the Drop policy doing its job: tell the client
		// to retry the whole batch after the drain catches up.
		w.Header().Set("Retry-After", "1")
		writeAPIError(w, &client.APIError{
			Status:  http.StatusTooManyRequests,
			Code:    client.CodeBackpressure,
			Message: err.Error(),
		})
	case errors.Is(err, hub.ErrUnknownStream):
		writeAPIError(w, unknownStream(id))
	case errors.Is(err, hub.ErrClosed):
		writeAPIError(w, hubClosed(err))
	default:
		writeAPIError(w, badRequest(err.Error()))
	}
}

func (s *Server) v1Detections(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	if id == "" {
		writeAPIError(w, badRequest("missing ?stream="))
		return
	}
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeAPIError(w, badRequest(fmt.Sprintf("bad ?since=%q: want a non-negative integer", raw)))
			return
		}
		since = n
	}
	dets, settled, err := s.hub.DetectionsSettled(id)
	if err != nil {
		writeAPIError(w, unknownStream(id))
		return
	}
	// Only the settled prefix is paged: those Recanted flags are final,
	// so a cursor consumer sees each detection exactly once in its final
	// state. Entries past Next (up to Total) still await full-window
	// verification and surface on a later poll or in the final report.
	if since > settled {
		since = settled
	}
	writeJSON(w, http.StatusOK, client.DetectionsPage{
		Stream:     id,
		Since:      since,
		Next:       settled,
		Total:      len(dets),
		Detections: dets[since:settled],
	})
}

func (s *Server) v1DeleteStream(w http.ResponseWriter, id string) {
	rep, err := s.hub.Detach(id)
	if err != nil {
		if errors.Is(err, hub.ErrClosed) {
			writeAPIError(w, hubClosed(err))
			return
		}
		writeAPIError(w, unknownStream(id))
		return
	}
	s.mu.Lock()
	delete(s.meta, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

// v1SnapshotStream exports a stream's durable state
// (GET /v1/streams/{id}/snapshot). The export cuts at a batch boundary
// and the stream keeps running; the body carries the opaque
// self-validating hub frame plus the kind/spec/engine the restoring
// server needs to rebuild the trained classifier — models are not
// serialized (DESIGN.md §Layer 12).
func (s *Server) v1SnapshotStream(w http.ResponseWriter, id string) {
	data, err := s.hub.Export(id)
	switch {
	case err == nil:
	case errors.Is(err, hub.ErrClosed):
		writeAPIError(w, hubClosed(err))
		return
	default:
		writeAPIError(w, unknownStream(id))
		return
	}
	_, pos, err := hub.SnapshotInfo(data)
	if err != nil {
		writeAPIError(w, &client.APIError{
			Status:  http.StatusInternalServerError,
			Code:    client.CodeInternal,
			Message: fmt.Sprintf("exported snapshot failed self-validation: %v", err),
		})
		return
	}
	s.mu.Lock()
	m := s.meta[id]
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, client.StreamSnapshot{
		ID: id, Kind: m.kind, Spec: m.spec, Engine: m.engine,
		Position: pos, State: data,
	})
}

// v1RestoreStream recreates a stream from an exported snapshot
// (POST /v1/streams/{id}/snapshot). The classifier is retrained from the
// named kind (and spec override, when one was used) through the same
// pipeline as registration; the snapshot's state frame then restores the
// runtime position, open candidates, transcript, and watch boundary.
// Corrupt or mismatched state fails with CodeBadSnapshot and attaches
// nothing.
func (s *Server) v1RestoreStream(w http.ResponseWriter, r *http.Request, id string) {
	var req client.StreamSnapshot
	if apiErr := decodeJSON(r, w, &req); apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	if req.ID != "" && req.ID != id {
		writeAPIError(w, badRequest(fmt.Sprintf("snapshot id %q does not match path id %q", req.ID, id)))
		return
	}
	if strings.Contains(id, "/") || id == "." || id == ".." {
		writeAPIError(w, badRequest(fmt.Sprintf("stream id %q must be a single path segment", id)))
		return
	}
	// The state frame names its stream; a mismatch means the caller mixed
	// up snapshots, which the typed error should say before the hub's own
	// validation runs.
	sid, _, err := hub.SnapshotInfo(req.State)
	if err != nil {
		writeAPIError(w, badSnapshot(err))
		return
	}
	if sid != id {
		writeAPIError(w, badSnapshot(fmt.Errorf("state frame is for stream %q, not %q", sid, id)))
		return
	}
	kindName := req.Kind
	if kindName == "" {
		kindName = s.deflt
	}
	kind, ok := s.kinds[kindName]
	if !ok {
		writeAPIError(w, &client.APIError{
			Status:  http.StatusBadRequest,
			Code:    client.CodeUnknownKind,
			Message: fmt.Sprintf("unknown kind %q (served: %s)", kindName, strings.Join(s.KindNames(), ", ")),
		})
		return
	}
	sc := kind.Config
	specStr := kind.Spec.String()
	if req.Spec != "" && req.Spec != specStr {
		override, err := specStreamConfig(kind, req.Spec)
		if err != nil {
			writeAPIError(w, &client.APIError{
				Status:  http.StatusBadRequest,
				Code:    client.CodeBadSpec,
				Message: err.Error(),
			})
			return
		}
		sc = override
		specStr = req.Spec
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.hub.Restore(req.State, sc); err != nil {
		writeAPIError(w, restoreError(err))
		return
	}
	s.meta[id] = streamMeta{kind: kind.Name, spec: specStr, engine: req.Engine}
	stats := s.hub.Snapshot()[id]
	writeJSON(w, http.StatusCreated, s.infoLocked(id, stats))
}

// specStreamConfig renders a kind's StreamConfig with its classifier
// replaced by one trained from spec against the kind's training set — the
// exact pipeline a /v1 registration with a spec override runs.
func specStreamConfig(kind hub.Kind, spec string) (hub.StreamConfig, error) {
	clf, err := etsc.TrainSpecString(spec, kind.TrainSet)
	if err != nil {
		return hub.StreamConfig{}, err
	}
	sc := kind.Config
	sc.Classifier = clf
	return sc, nil
}

// ---- /v1 helpers ----

// decodeJSON reads a size-capped JSON body. A non-nil return is the
// structured error to write.
func decodeJSON(r *http.Request, w http.ResponseWriter, into any) *client.APIError {
	body := http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &client.APIError{
				Status:  http.StatusRequestEntityTooLarge,
				Code:    client.CodeTooLarge,
				Message: fmt.Sprintf("body over %d bytes; split the batch", tooBig.Limit),
			}
		}
		return &client.APIError{
			Status:  http.StatusBadRequest,
			Code:    client.CodeBadJSON,
			Message: fmt.Sprintf("bad JSON body: %v", err),
		}
	}
	return nil
}

func badRequest(msg string) *client.APIError {
	return &client.APIError{Status: http.StatusBadRequest, Code: client.CodeBadRequest, Message: msg}
}

func unknownStream(id string) *client.APIError {
	return &client.APIError{
		Status:  http.StatusNotFound,
		Code:    client.CodeUnknownStream,
		Message: fmt.Sprintf("unknown stream %q", id),
	}
}

func hubClosed(err error) *client.APIError {
	return &client.APIError{Status: http.StatusServiceUnavailable, Code: client.CodeClosed, Message: err.Error()}
}

func badSnapshot(err error) *client.APIError {
	return &client.APIError{Status: http.StatusBadRequest, Code: client.CodeBadSnapshot, Message: err.Error()}
}

// restoreError maps a hub.Restore failure onto the wire contract:
// validation failures are CodeBadSnapshot, an occupied id is the same
// conflict as a duplicate registration, a closing hub is CodeClosed.
func restoreError(err error) *client.APIError {
	switch {
	case errors.Is(err, hub.ErrDuplicate):
		return &client.APIError{Status: http.StatusConflict, Code: client.CodeDuplicateStream, Message: err.Error()}
	case errors.Is(err, hub.ErrClosed):
		return hubClosed(err)
	default:
		return badSnapshot(err)
	}
}

func attachError(err error) *client.APIError {
	switch {
	case errors.Is(err, hub.ErrDuplicate):
		return &client.APIError{Status: http.StatusConflict, Code: client.CodeDuplicateStream, Message: err.Error()}
	case errors.Is(err, hub.ErrClosed):
		return hubClosed(err)
	default:
		return badRequest(err.Error())
	}
}

func methodNotAllowed(r *http.Request, allow ...string) *client.APIError {
	return &client.APIError{
		Status:  http.StatusMethodNotAllowed,
		Code:    client.CodeMethodNotAllowed,
		Message: fmt.Sprintf("%s not allowed on %s (allow: %s)", r.Method, r.URL.Path, strings.Join(allow, ", ")),
	}
}

func writeAPIError(w http.ResponseWriter, ae *client.APIError) {
	writeJSON(w, ae.Status, client.ErrorEnvelope{Error: *ae})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode: %v", err)
	}
}

// ---- legacy aliases (frozen pre-/v1 behaviour) ----

// ensure lazily attaches id with the pipeline named by kind — the legacy
// contract; /v1 clients register explicitly instead.
func (s *Server) ensure(id, kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.meta[id]; ok {
		return nil
	}
	if kind == "" {
		kind = s.deflt
	}
	k, ok := s.kinds[kind]
	if !ok {
		return fmt.Errorf("unknown kind %q (want one of %s)", kind, strings.Join(s.KindNames(), ","))
	}
	if err := s.hub.Attach(id, k.Config); err != nil {
		return err
	}
	s.meta[id] = streamMeta{kind: k.Name, spec: k.Spec.String(), engine: k.Config.Engine.String()}
	return nil
}

func (s *Server) handleLegacyPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("stream")
	if id == "" {
		http.Error(w, "missing ?stream=", http.StatusBadRequest)
		return
	}
	// Parse the whole body before touching the hub: a rejected request
	// must have no side effect (no lazily attached ghost stream). The
	// body is size-capped so one request cannot balloon process memory.
	var batch []float64
	body := http.MaxBytesReader(w, r.Body, maxBody)
	sc := bufio.NewScanner(body)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad point %q: %v", sc.Text(), err), http.StatusBadRequest)
			return
		}
		batch = append(batch, v)
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body over %d bytes; split the batch", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.ensure(id, r.URL.Query().Get("kind")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	err := s.hub.Push(id, batch)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"stream": id, "queued": len(batch)})
	case errors.Is(err, hub.ErrDropped):
		// Backpressure surfaced to the HTTP client as 429.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Server) handleLegacyStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.hub.Stats())
}

// handleLegacyStreams reads the live snapshot without waiting for queues
// to drain — under sustained ingest a Flush here would park the handler
// until producers pause, making monitoring unavailable exactly when it
// matters.
func (s *Server) handleLegacyStreams(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.hub.Snapshot())
}

func (s *Server) handleLegacyDetections(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	dets, err := s.hub.Detections(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"stream": id, "detections": dets})
}

func (s *Server) handleLegacyDetach(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("stream")
	rep, err := s.hub.Detach(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.mu.Lock()
	delete(s.meta, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}
