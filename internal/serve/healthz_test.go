package serve_test

// GET /v1/healthz — the readiness probe the router's health loop (and
// any orchestrator) keys off: 200/ok when the server can take traffic,
// 503/unavailable while a boot-time checkpoint restore is in flight.

import (
	"context"
	"net/http"
	"testing"

	"etsc/internal/client"
	"etsc/internal/hub"
	"etsc/internal/serve"
	"etsc/internal/serve/servetest"
)

func TestHealthzReadiness(t *testing.T) {
	ts := servetest.New(t, hub.Config{Workers: 2}, servetest.DemoKinds(t))
	ctx := context.Background()

	h, err := ts.Client.Health(ctx)
	if err != nil {
		t.Fatalf("healthz on an idle server: %v", err)
	}
	if h.Status != "ok" || h.Streams != 0 {
		t.Fatalf("healthz = %+v, want ok/0", h)
	}

	// Streams count tracks the hub.
	if _, err := ts.Client.CreateStream(ctx, client.CreateStreamRequest{ID: "hz-1"}); err != nil {
		t.Fatal(err)
	}
	if h, err = ts.Client.Health(ctx); err != nil || h.Streams != 1 {
		t.Fatalf("healthz after create = %+v, %v; want 1 stream", h, err)
	}

	// While a checkpoint restore is in flight the server is not ready:
	// structured 503/unavailable, which the typed client surfaces as an
	// error (deliberately not retried — probers must see failures).
	ts.Srv.BeginRestore()
	_, err = ts.Client.Health(ctx)
	servetest.APIErrOf(t, err, http.StatusServiceUnavailable, client.CodeUnavailable)
	ts.Srv.EndRestore()

	if h, err = ts.Client.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz after restore = %+v, %v; want ok", h, err)
	}

	// Wrong method is a structured 405.
	status, body := servetest.RawStatus(t, http.MethodPost, ts.HTTP.URL+"/v1/healthz", "")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/healthz = %d, want 405", status)
	}
	if code := servetest.EnvelopeCode(t, body); code != client.CodeMethodNotAllowed {
		t.Fatalf("code = %s, want %s", code, client.CodeMethodNotAllowed)
	}
	ts.CloseHub(t)
}

// TestHealthzDuringBootRestore drives the real path: a server built over
// a checkpoint directory reports ready only after RestoreFromDir
// returns, and the restored streams are counted.
func TestHealthzDuringBootRestore(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	dir := t.TempDir()

	// First life: a stream checkpointed to disk.
	ts1 := servetest.New(t, hub.Config{Workers: 2}, kinds)
	ctx := context.Background()
	if _, err := ts1.Client.CreateStream(ctx, client.CreateStreamRequest{ID: "boot-1"}); err != nil {
		t.Fatal(err)
	}
	ck, err := serve.NewCheckpointer(ts1.Srv, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Sync(); err != nil {
		t.Fatal(err)
	}
	ts1.CloseHub(t)

	// Second life: restore from the directory, then the probe is green
	// and the stream is back.
	ts2 := servetest.New(t, hub.Config{Workers: 2}, kinds)
	if _, err := ts2.Srv.RestoreFromDir(dir, t.Logf); err != nil {
		t.Fatal(err)
	}
	h, err := ts2.Client.Health(ctx)
	if err != nil {
		t.Fatalf("healthz after boot restore: %v", err)
	}
	if h.Status != "ok" || h.Streams != 1 {
		t.Fatalf("healthz after boot restore = %+v, want ok/1", h)
	}
	ts2.CloseHub(t)
}
