package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"etsc/internal/client"
	"etsc/internal/hub"
	"etsc/internal/serve"
	"etsc/internal/serve/servetest"
	"etsc/internal/snap"
)

// pushRange pushes data[from:to] to id in fixed-size batches through the
// typed client, positioned when at >= 0.
func pushRange(t *testing.T, c *client.Client, id string, data []float64, from, to int, positioned bool) {
	t.Helper()
	ctx := context.Background()
	for at := from; at < to; at += 100 {
		end := at + 100
		if end > to {
			end = to
		}
		var err error
		if positioned {
			_, err = c.PushAt(ctx, id, at, data[at:end])
		} else {
			_, err = c.Push(ctx, id, data[at:end])
		}
		if err != nil {
			t.Fatalf("push %s at %d: %v", id, at, err)
		}
	}
}

// TestSnapshotEndpointRoundTrip is the wire-level half of the durable
// state proof: two streams of the same kind get the same telemetry, one
// is snapshotted mid-stream over HTTP, deleted, restored from the
// snapshot, and replayed with overlap — and the two final transcripts
// are identical.
func TestSnapshotEndpointRoundTrip(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	ts := servetest.New(t, hub.Config{Workers: 2}, kinds)
	streams, err := hub.DemoStreams(kinds, 5, 1, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	ds := streams[0]
	ctx := context.Background()
	c := ts.Client
	for _, id := range []string{"twin-a", "twin-b"} {
		if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: id, Kind: ds.Kind}); err != nil {
			t.Fatal(err)
		}
	}
	pushRange(t, c, "twin-a", ds.Data, 0, len(ds.Data), false)
	half := len(ds.Data) / 2
	pushRange(t, c, "twin-b", ds.Data, 0, half, false)
	ts.Flush()

	snapB, err := c.SnapshotStream(ctx, "twin-b")
	if err != nil {
		t.Fatal(err)
	}
	if snapB.ID != "twin-b" || snapB.Kind != ds.Kind || snapB.Position != half {
		t.Fatalf("snapshot = {id %q kind %q pos %d}, want {twin-b %s %d}",
			snapB.ID, snapB.Kind, snapB.Position, ds.Kind, half)
	}
	// Restoring over the still-live stream must conflict, not clobber.
	_, err = c.RestoreStream(ctx, snapB)
	servetest.APIErrOf(t, err, http.StatusConflict, client.CodeDuplicateStream)

	if _, err := c.DeleteStream(ctx, "twin-b"); err != nil {
		t.Fatal(err)
	}
	info, err := c.RestoreStream(ctx, snapB)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if info.Stats.Position != half || info.Kind != ds.Kind {
		t.Fatalf("restored info = {kind %q pos %d}, want {%s %d}", info.Kind, info.Stats.Position, ds.Kind, half)
	}

	// Replay from before the watermark (the overlap must be skipped, not
	// double-applied), then the rest of the stream.
	from := half - 37
	if from < 0 {
		from = 0
	}
	pushRange(t, c, "twin-b", ds.Data, from, len(ds.Data), true)
	// A positioned push beyond the watermark is a refused gap.
	_, err = c.PushAt(ctx, "twin-b", len(ds.Data)+50, []float64{1})
	servetest.APIErrOf(t, err, http.StatusConflict, client.CodeGap)
	ts.Flush()

	ra, err := c.DeleteStream(ctx, "twin-a")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.DeleteStream(ctx, "twin-b")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", rb.Detections), fmt.Sprintf("%+v", ra.Detections); got != want {
		t.Errorf("restored transcript != uninterrupted twin\n got %s\nwant %s", got, want)
	}
	if rb.Stats.Position != len(ds.Data) {
		t.Errorf("restored stream position %d, want %d", rb.Stats.Position, len(ds.Data))
	}
	ts.CloseHub(t)
}

// TestSnapshotEndpointRejectsCorruption drives the restore endpoint with
// corrupted and mismatched snapshots: every failure is a structured
// {"error":{code,...}} — bad_snapshot for state-level damage — and
// nothing attaches.
func TestSnapshotEndpointRejectsCorruption(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	ts := servetest.New(t, hub.Config{Workers: 2}, kinds)
	streams, err := hub.DemoStreams(kinds, 7, 1, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	ds := streams[0]
	ctx := context.Background()
	c := ts.Client
	if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: "s", Kind: ds.Kind}); err != nil {
		t.Fatal(err)
	}
	pushRange(t, c, "s", ds.Data, 0, 1_000, false)
	ts.Flush()
	good, err := c.SnapshotStream(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteStream(ctx, "s"); err != nil {
		t.Fatal(err)
	}

	t.Run("corrupt state bytes", func(t *testing.T) {
		for _, i := range []int{0, 4, len(good.State) / 2, len(good.State) - 1} {
			bad := good
			bad.State = append([]byte(nil), good.State...)
			bad.State[i] ^= 0x40
			_, err := c.RestoreStream(ctx, bad)
			servetest.APIErrOf(t, err, http.StatusBadRequest, client.CodeBadSnapshot)
		}
	})
	t.Run("truncated state", func(t *testing.T) {
		for _, cut := range []int{0, 1, 7, len(good.State) / 2, len(good.State) - 1} {
			bad := good
			bad.State = good.State[:cut]
			_, err := c.RestoreStream(ctx, bad)
			servetest.APIErrOf(t, err, http.StatusBadRequest, client.CodeBadSnapshot)
		}
	})
	t.Run("state for another stream", func(t *testing.T) {
		bad := good
		bad.ID = "someone-else"
		_, err := c.RestoreStream(ctx, bad)
		servetest.APIErrOf(t, err, http.StatusBadRequest, client.CodeBadSnapshot)
	})
	t.Run("unknown kind", func(t *testing.T) {
		bad := good
		bad.Kind = "no-such-kind"
		_, err := c.RestoreStream(ctx, bad)
		servetest.APIErrOf(t, err, http.StatusBadRequest, client.CodeUnknownKind)
	})
	t.Run("negative positioned push", func(t *testing.T) {
		status, body := servetest.RawStatus(t, http.MethodPost, ts.HTTP.URL+"/v1/streams/s/push",
			`{"points":[1],"at":-3}`)
		if status != http.StatusBadRequest || servetest.EnvelopeCode(t, body) != client.CodeBadRequest {
			t.Fatalf("at=-3 push: status %d body %s", status, body)
		}
	})

	// After the whole corruption battery, nothing is attached...
	if infos, err := c.Streams(ctx); err != nil || len(infos) != 0 {
		t.Fatalf("streams after corruption battery: %v, %v", infos, err)
	}
	// ...and the untouched snapshot still restores cleanly.
	if _, err := c.RestoreStream(ctx, good); err != nil {
		t.Fatalf("good snapshot after battery: %v", err)
	}
	ts.CloseHub(t)
}

// TestCheckpointBootRestore is the boot-path proof: a checkpoint
// generation taken from a live server restores every stream at its
// watermark on a fresh server, replay completes the streams, and a
// directory full of torn/corrupt files degrades to counted fallbacks and
// skips — never a failed boot.
func TestCheckpointBootRestore(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	dir := t.TempDir()
	ts1 := servetest.New(t, hub.Config{Workers: 2}, kinds)
	streams, err := hub.DemoStreams(kinds, 6, 3, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	marks := map[string]int{}
	for _, ds := range streams {
		if _, err := ts1.Client.CreateStream(ctx, client.CreateStreamRequest{ID: ds.ID, Kind: ds.Kind}); err != nil {
			t.Fatal(err)
		}
		n := len(ds.Data) * 3 / 5
		pushRange(t, ts1.Client, ds.ID, ds.Data, 0, n, false)
		marks[ds.ID] = n
	}
	ts1.Flush()
	cp, err := serve.NewCheckpointer(ts1.Srv, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cp.SetLogf(t.Logf)
	if err := cp.Sync(); err != nil {
		t.Fatal(err)
	}
	// ts1 is now "killed": abandoned without shutdown. The checkpoint
	// files are all the next boot gets.

	ts2 := servetest.New(t, hub.Config{Workers: 2}, kinds)
	st, err := ts2.Srv.RestoreFromDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != len(streams) || st.Fallbacks != 0 || st.Skipped != 0 {
		t.Fatalf("restore stats %+v, want {Restored:%d}", st, len(streams))
	}
	for _, ds := range streams {
		info, err := ts2.Client.Stream(ctx, ds.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.Stats.Position != marks[ds.ID] || info.Kind != ds.Kind {
			t.Fatalf("%s restored at {kind %q pos %d}, want {%s %d}",
				ds.ID, info.Kind, info.Stats.Position, ds.Kind, marks[ds.ID])
		}
		// Replay from (before) the watermark to the end; the stream must
		// finish at full length.
		from := marks[ds.ID] - 23
		if from < 0 {
			from = 0
		}
		pushRange(t, ts2.Client, ds.ID, ds.Data, from, len(ds.Data), true)
	}
	ts2.Flush()
	for _, ds := range streams {
		info, err := ts2.Client.Stream(ctx, ds.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.Stats.Position != len(ds.Data) {
			t.Fatalf("%s finished at %d, want %d", ds.ID, info.Stats.Position, len(ds.Data))
		}
	}
	ts2.CloseHub(t)

	// The chaos half: torn prefixes, flipped bytes, junk, and an
	// outer-valid/inner-corrupt frame, all next to one good file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goodFrame []byte
	var goodName string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			goodName = e.Name()
			if goodFrame, err = os.ReadFile(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if goodFrame == nil {
		t.Fatal("no checkpoint files written")
	}
	dir2 := t.TempDir()
	write := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir2, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(goodName, goodFrame)
	write("torn-a.ckpt", goodFrame[:len(goodFrame)/3])
	write("torn-b.ckpt", goodFrame[:len(goodFrame)-2])
	flipped := append([]byte(nil), goodFrame...)
	flipped[len(flipped)/2] ^= 0x10
	write("flipped.ckpt", flipped)
	write("junk.ckpt", []byte("not a checkpoint at all"))
	write("innerbad.ckpt", innerCorrupt(t, goodFrame))

	ts3 := servetest.New(t, hub.Config{Workers: 2}, kinds)
	st3, err := ts3.Srv.RestoreFromDir(dir2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	// The good file and the inner-corrupt file name the same stream; file
	// order is sorted, so the flipped/good/innerbad contention is
	// deterministic: whichever valid-outer frame comes first wins the id,
	// the later one is a duplicate skip. Pin the aggregate shape.
	if st3.Restored+st3.Fallbacks != 1 || st3.Skipped != 5 {
		t.Fatalf("chaos restore stats %+v, want exactly one live outcome and 5 skips", st3)
	}
	infos, err := ts3.Client.Streams(ctx)
	if err != nil || len(infos) != 1 {
		t.Fatalf("streams after chaos boot: %v, %v", infos, err)
	}
	ts3.CloseHub(t)
}

// innerCorrupt rebuilds a checkpoint frame whose outer CRC is valid but
// whose embedded hub state is damaged — the case that must degrade to a
// fresh-start fallback rather than a skip or a failed boot.
func innerCorrupt(t *testing.T, frame []byte) []byte {
	t.Helper()
	kind, ver, payload, err := snap.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	r := snap.NewReader(payload)
	id, kindName, spec, engine := r.String(), r.String(), r.String(), r.String()
	state := append([]byte(nil), r.Blob()...)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	state[len(state)/2] ^= 0x20
	var w snap.Writer
	w.String(id)
	w.String(kindName)
	w.String(spec)
	w.String(engine)
	w.Blob(state)
	return snap.Encode(kind, ver, w.Bytes())
}

// TestShutdownRebootResume pins the clean-shutdown contract: a final
// checkpoint generation written after the last flush restores on the
// next boot at exactly the drained position — zero replay — with the
// settled transcript intact.
func TestShutdownRebootResume(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	dir := t.TempDir()
	ts1 := servetest.New(t, hub.Config{Workers: 2}, kinds)
	streams, err := hub.DemoStreams(kinds, 8, 2, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, ds := range streams {
		if _, err := ts1.Client.CreateStream(ctx, client.CreateStreamRequest{ID: ds.ID, Kind: ds.Kind}); err != nil {
			t.Fatal(err)
		}
		pushRange(t, ts1.Client, ds.ID, ds.Data, 0, len(ds.Data), false)
	}
	// The etsc-serve shutdown order: drain, then the final generation.
	ts1.Flush()
	cp, err := serve.NewCheckpointer(ts1.Srv, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cp.SetLogf(t.Logf)
	if err := cp.Sync(); err != nil {
		t.Fatal(err)
	}
	pages := map[string]string{}
	for _, ds := range streams {
		page, err := ts1.Client.Detections(ctx, ds.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		pages[ds.ID] = fmt.Sprintf("%+v", page.Detections)
	}
	ts1.CloseHub(t)

	ts2 := servetest.New(t, hub.Config{Workers: 2}, kinds)
	st, err := ts2.Srv.RestoreFromDir(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != len(streams) || st.Fallbacks+st.Skipped != 0 {
		t.Fatalf("restore stats %+v, want {Restored:%d}", st, len(streams))
	}
	for _, ds := range streams {
		info, err := ts2.Client.Stream(ctx, ds.ID)
		if err != nil {
			t.Fatal(err)
		}
		// Zero replay: the restored watermark is the full drained length.
		if info.Stats.Position != len(ds.Data) {
			t.Fatalf("%s restored at %d, want %d (zero replay)", ds.ID, info.Stats.Position, len(ds.Data))
		}
		page, err := ts2.Client.Detections(ctx, ds.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%+v", page.Detections); got != pages[ds.ID] {
			t.Errorf("%s settled transcript changed across reboot\n got %s\nwant %s", ds.ID, got, pages[ds.ID])
		}
		// The resumed stream is live: more telemetry still flows.
		if _, err := ts2.Client.Push(ctx, ds.ID, ds.Data[:64]); err != nil {
			t.Fatal(err)
		}
	}
	ts2.CloseHub(t)
}
