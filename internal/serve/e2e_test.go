package serve_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"etsc/internal/client"
	"etsc/internal/hub"
	"etsc/internal/serve"
	"etsc/internal/serve/servetest"
)

// TestV1EndToEndMatchesReference drives the full /v1 surface through the
// typed client — register, batch ingest, stats, cursor-paged detections,
// delete — for six streams over the three demo kinds, and pins every
// stream's final transcript equal to the serial hub.Reference oracle:
// serving over HTTP adds transport, not behaviour.
func TestV1EndToEndMatchesReference(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	srv := servetest.New(t, hub.Config{Workers: 4}, kinds)
	h, c := srv.Hub, srv.Client
	ctx := context.Background()

	const nStreams, minLen = 6, 2400
	gens, err := hub.DemoStreams(kinds, 3, nStreams, minLen)
	if err != nil {
		t.Fatal(err)
	}
	kindOf := map[string]hub.Kind{}
	for _, k := range kinds {
		kindOf[k.Name] = k
	}

	for i, g := range gens {
		kindName := kinds[i%len(kinds)].Name
		info, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: kindName})
		if err != nil {
			t.Fatalf("create %s: %v", g.ID, err)
		}
		if info.ID != g.ID || info.Kind != kindName || info.Spec != kindOf[kindName].Spec.String() {
			t.Fatalf("create %s: info %+v", g.ID, info)
		}
	}

	// Batched ingest with per-stream seeded batch sizes, interleaved
	// round-robin so streams genuinely overlap in the pool.
	offsets := make([]int, len(gens))
	rngs := make([]*rand.Rand, len(gens))
	for i := range gens {
		rngs[i] = rand.New(rand.NewSource(int64(100 + i)))
	}
	var total int
	for {
		progressed := false
		for i, g := range gens {
			if offsets[i] >= len(g.Data) {
				continue
			}
			progressed = true
			n := 1 + rngs[i].Intn(127)
			if offsets[i]+n > len(g.Data) {
				n = len(g.Data) - offsets[i]
			}
			resp, err := c.Push(ctx, g.ID, g.Data[offsets[i]:offsets[i]+n])
			if err != nil {
				t.Fatalf("push %s: %v", g.ID, err)
			}
			if resp.Queued != n {
				t.Fatalf("push %s: queued %d, want %d", g.ID, resp.Queued, n)
			}
			offsets[i] += n
			total += n
		}
		if !progressed {
			break
		}
	}

	h.Flush()
	totals, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if totals.Streams != nStreams || totals.Points != int64(total) {
		t.Fatalf("stats %+v, want %d streams / %d points", totals, nStreams, total)
	}
	streams, err := c.Streams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != nStreams {
		t.Fatalf("Streams() returned %d entries, want %d", len(streams), nStreams)
	}

	for i, g := range gens {
		kind := kinds[i%len(kinds)]

		// Cursor pagination over the settled prefix, then verify the
		// cursor is exhausted (no new data → no new settles).
		first, err := c.Detections(ctx, g.ID, 0)
		if err != nil {
			t.Fatalf("detections %s: %v", g.ID, err)
		}
		if len(first.Detections) != first.Next-first.Since || first.Total < first.Next {
			t.Fatalf("detections %s: page %+v inconsistent", g.ID, first)
		}
		again, err := c.Detections(ctx, g.ID, first.Next)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Detections) != 0 || again.Next != first.Next {
			t.Fatalf("cursor %s: non-empty tail %+v", g.ID, again)
		}

		rep, err := c.DeleteStream(ctx, g.ID)
		if err != nil {
			t.Fatalf("delete %s: %v", g.ID, err)
		}
		want, err := hub.Reference(kind.Config, g.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detections, want) {
			t.Errorf("%s: /v1 transcript diverges from Reference:\n got %v\nwant %v", g.ID, rep.Detections, want)
		}
		if rep.Stats.Position != len(g.Data) {
			t.Errorf("%s: final position %d, want %d", g.ID, rep.Stats.Position, len(g.Data))
		}
	}
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV1SpecStreamMatchesReference registers a stream whose classifier
// comes from a declarative spec override (not the kind default) and pins
// its transcript against a Reference oracle running the same spec-trained
// classifier.
func TestV1SpecStreamMatchesReference(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	srv := servetest.New(t, hub.Config{Workers: 2}, kinds)
	h, c := srv.Hub, srv.Client
	ctx := context.Background()

	var chicken hub.Kind
	for _, k := range kinds {
		if k.Name == "chicken" {
			chicken = k
		}
	}
	const spec = "probthreshold:threshold=0.95,minprefix=12"
	info, err := c.CreateStream(ctx, client.CreateStreamRequest{
		ID: "coop-spec", Kind: "chicken", Spec: spec, Engine: "eager",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Spec != spec || info.Engine != "eager" {
		t.Fatalf("spec stream info %+v", info)
	}

	data, err := chicken.Gen(rand.New(rand.NewSource(99)), 2600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(ctx, "coop-spec", data); err != nil {
		t.Fatal(err)
	}
	rep, err := c.DeleteStream(ctx, "coop-spec")
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the same spec trained on the kind's dataset, same geometry.
	refCfg, err := serve.SpecStreamConfig(chicken, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hub.Reference(refCfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Detections, want) {
		t.Errorf("spec stream transcript diverges from Reference:\n got %v\nwant %v", rep.Detections, want)
	}
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
