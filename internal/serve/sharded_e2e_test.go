package serve_test

import (
	"context"
	"reflect"
	"testing"

	"etsc/internal/client"
	"etsc/internal/hub"
	"etsc/internal/serve/servetest"
)

// TestV1ShardedEndToEnd drives the /v1 surface against a 4-shard hub:
// StreamInfo echoes the hub's own hash placement, GET /v1/stats carries a
// per-shard breakdown summing to the flat totals (so pre-shard clients
// decoding only Totals keep working), and every stream's final transcript
// still equals the serial hub.Reference oracle — sharding is a routing
// detail, not a behaviour change.
func TestV1ShardedEndToEnd(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	const shards = 4
	srv := servetest.NewSharded(t, hub.ShardedConfig{Shards: shards, Config: hub.Config{Workers: 4}}, kinds)
	h, c := srv.Sharded, srv.Client
	ctx := context.Background()

	const nStreams, minLen = 8, 2400
	gens, err := hub.DemoStreams(kinds, 11, nStreams, minLen)
	if err != nil {
		t.Fatal(err)
	}

	var total int64
	for i, g := range gens {
		kindName := kinds[i%len(kinds)].Name
		info, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: kindName})
		if err != nil {
			t.Fatalf("create %s: %v", g.ID, err)
		}
		if info.Shard != h.ShardFor(g.ID) {
			t.Fatalf("create %s: StreamInfo.Shard %d, hub places it on %d", g.ID, info.Shard, h.ShardFor(g.ID))
		}
		for off := 0; off < len(g.Data); off += 96 {
			end := min(off+96, len(g.Data))
			if _, err := c.Push(ctx, g.ID, g.Data[off:end]); err != nil {
				t.Fatalf("push %s: %v", g.ID, err)
			}
		}
		total += int64(len(g.Data))
	}
	h.Flush()

	// GET /v1/streams re-reports placement for every stream.
	infos, err := c.Streams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != nStreams {
		t.Fatalf("Streams() returned %d entries, want %d", len(infos), nStreams)
	}
	for _, info := range infos {
		if info.Shard != h.ShardFor(info.ID) {
			t.Fatalf("list %s: Shard %d, want %d", info.ID, info.Shard, h.ShardFor(info.ID))
		}
	}

	// Flat decode (pre-shard client) and full decode agree; the per-shard
	// rows sum to the flat totals.
	flat, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.ShardStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if flat != full.Totals {
		t.Fatalf("flat totals %+v != embedded totals %+v", flat, full.Totals)
	}
	if flat.Streams != nStreams || flat.Points != total {
		t.Fatalf("totals %+v, want %d streams / %d points", flat, nStreams, total)
	}
	if len(full.Shards) != shards {
		t.Fatalf("stats carries %d shard rows, want %d", len(full.Shards), shards)
	}
	var sum hub.Totals
	for i, st := range full.Shards {
		if st.Shard != i {
			t.Fatalf("shard row %d labelled %d", i, st.Shard)
		}
		sum.Streams += st.Streams
		sum.Batches += st.Batches
		sum.Points += st.Points
		sum.QueuedBatches += st.QueuedBatches
		sum.DroppedBatches += st.DroppedBatches
		sum.DroppedPoints += st.DroppedPoints
		sum.ShedBatches += st.ShedBatches
		sum.ShedPoints += st.ShedPoints
		sum.Detections += st.Detections
		sum.Recanted += st.Recanted
		sum.Watchers += st.Watchers
	}
	if sum != flat {
		t.Fatalf("shard rows sum to %+v, flat totals %+v", sum, flat)
	}

	for i, g := range gens {
		kind := kinds[i%len(kinds)]
		rep, err := c.DeleteStream(ctx, g.ID)
		if err != nil {
			t.Fatalf("delete %s: %v", g.ID, err)
		}
		want, err := hub.Reference(kind.Config, g.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detections, want) {
			t.Errorf("%s: sharded /v1 transcript diverges from Reference:\n got %v\nwant %v", g.ID, rep.Detections, want)
		}
	}
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV1UnshardedStatsShape pins the unsharded server's /v1/stats body:
// no "shards" key (omitempty) and Shard 0 in StreamInfo, so flat servers
// look exactly like they did before sharding existed.
func TestV1UnshardedStatsShape(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	srv := servetest.New(t, hub.Config{Workers: 2}, kinds)
	c := srv.Client
	ctx := context.Background()

	info, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: "flat-0"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != 0 {
		t.Fatalf("unsharded StreamInfo.Shard = %d, want 0", info.Shard)
	}
	full, err := c.ShardStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if full.Shards != nil {
		t.Fatalf("unsharded /v1/stats carries shard rows: %+v", full.Shards)
	}
	if full.Streams != 1 {
		t.Fatalf("totals %+v, want 1 stream", full.Totals)
	}
}
