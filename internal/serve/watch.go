// GET /v1/streams/{id}/watch — the live half of the detection read path.
// The cursor endpoint (/v1/detections) stays the pinned pull reference;
// watch is the push inversion of the same settled prefix, and the two are
// interchangeable frame-for-frame: a subscription transcript equals the
// paged transcript byte-for-byte, which the equivalence battery asserts.
//
// Resume contract (exactly-once across reconnects): every detection frame
// carries its transcript index as the SSE event id and Next = index+1. A
// reconnecting subscriber passes ?since=Next, or standard SSE replay
// headers (Last-Event-ID: M means since = M+1). Overshooting since is
// clamped to the settled prefix, so a stale resume token replays nothing
// and a too-new one cannot skip.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"etsc/internal/client"
	"etsc/internal/hub"
)

// v1Watch streams a stream's settled detections as SSE (default) or NDJSON
// (?format=ndjson). The handler returns when the stream finalizes (a Final
// frame is the clean last word — DELETE under a live watcher terminates the
// feed, never hangs it) or when the client disconnects.
func (s *Server) v1Watch(w http.ResponseWriter, r *http.Request, id string) {
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeAPIError(w, badRequest(fmt.Sprintf("bad ?since=%q: want a non-negative integer", raw)))
			return
		}
		since = n
	} else if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		n, err := strconv.Atoi(lei)
		if err != nil || n < 0 {
			writeAPIError(w, badRequest(fmt.Sprintf("bad Last-Event-ID %q: want a non-negative integer", lei)))
			return
		}
		since = n + 1
	}
	sse := true
	switch r.URL.Query().Get("format") {
	case "", "sse":
	case "ndjson":
		sse = false
	default:
		writeAPIError(w, badRequest(fmt.Sprintf("bad ?format=%q: want sse or ndjson", r.URL.Query().Get("format"))))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, &client.APIError{
			Status:  http.StatusInternalServerError,
			Code:    client.CodeInternal,
			Message: "response writer does not support streaming",
		})
		return
	}

	wch, err := s.hub.Watch(id, since)
	switch {
	case err == nil:
	case errors.Is(err, hub.ErrClosed):
		writeAPIError(w, hubClosed(err))
		return
	default:
		writeAPIError(w, unknownStream(id))
		return
	}
	defer wch.Close()

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not coalesce frames
	w.WriteHeader(http.StatusOK)
	if sse {
		// An immediate comment commits the headers so the subscriber knows
		// it is attached before the first detection settles.
		fmt.Fprintf(w, ": watch %s since=%d\n\n", id, wch.Cursor())
	}
	flusher.Flush()

	cursor := wch.Cursor() // hub-side clamp applied
	ctx := r.Context()
	for {
		dets, final, err := wch.Next(ctx)
		if err != nil {
			return // client went away; the deferred Close frees the watcher slot
		}
		for i := range dets {
			frame := client.WatchFrame{Stream: id, Index: cursor, Next: cursor + 1, Detection: &dets[i]}
			if !writeFrame(w, frame, sse, true) {
				return
			}
			cursor++
		}
		if final {
			writeFrame(w, client.WatchFrame{Stream: id, Index: cursor, Next: cursor, Final: true}, sse, false)
			flusher.Flush()
			return
		}
		flusher.Flush()
	}
}

// writeFrame renders one frame in the negotiated format. Detection frames
// carry the transcript index as the SSE event id (the resume token); the
// terminal Final frame does not advance Last-Event-ID. Returns false when
// the connection is gone.
func writeFrame(w http.ResponseWriter, f client.WatchFrame, sse, withID bool) bool {
	raw, err := json.Marshal(f)
	if err != nil {
		return false
	}
	if sse {
		if withID {
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", f.Index, raw); err != nil {
				return false
			}
			return true
		}
		_, err = fmt.Fprintf(w, "data: %s\n\n", raw)
		return err == nil
	}
	_, err = fmt.Fprintf(w, "%s\n", raw)
	return err == nil
}
