package serve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"etsc/internal/client"
	"etsc/internal/hub"
	"etsc/internal/serve/servetest"
	"etsc/internal/stream"
)

// fuzzGen caches one deterministic demo stream per test binary; fuzz
// iterations slice prefixes off it rather than re-running the generator.
var fuzzGen = sync.OnceValues(func() (hub.DemoStream, error) {
	kinds, err := hub.DemoKinds(3)
	if err != nil {
		return hub.DemoStream{}, err
	}
	gens, err := hub.DemoStreams(kinds, 97, 1, 2_400)
	if err != nil {
		return hub.DemoStream{}, err
	}
	return gens[0], nil
})

// FuzzWatchFrames fuzzes the serve-layer subscription path: arbitrary push
// batch boundaries (batchPlan) interleaved with plan-driven watcher
// disconnect/reconnect points (watchPlan, resuming at the frame's Next
// cursor each time) must never deliver a settled detection twice, out of
// order, or not at all — the stitched transcript always equals the serial
// hub.Reference oracle and the stream's final report.
func FuzzWatchFrames(f *testing.F) {
	f.Add(uint8(255), []byte{10, 50, 3, 96}, []byte{0, 1, 2, 3, 4})
	f.Add(uint8(64), []byte{1, 1, 1}, []byte{0, 0, 0, 0})
	f.Add(uint8(200), []byte{}, []byte{})
	f.Add(uint8(16), []byte{200, 200}, []byte{5, 0, 5, 0})

	f.Fuzz(func(t *testing.T, lenByte uint8, batchPlan, watchPlan []byte) {
		gen, err := fuzzGen()
		if err != nil {
			t.Fatal(err)
		}
		kinds := servetest.DemoKinds(t)
		var kind hub.Kind
		for _, k := range kinds {
			if k.Name == gen.Kind {
				kind = k
			}
		}
		// 256..2400 points, scaled by the fuzz byte.
		data := gen.Data[:min(256+int(lenByte)*9, len(gen.Data))]

		srv := servetest.New(t, hub.Config{Workers: 2}, kinds)
		c := srv.Client
		ctx := context.Background()
		if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: "fz", Kind: kind.Name}); err != nil {
			t.Fatal(err)
		}

		// Watcher: collect frames, reconnecting at the resume cursor whenever
		// the plan says so. Runs concurrently with the pushes below; the
		// cursor is published only after any reconnect for that frame
		// completed, and st.stop is set before the DELETE below, so a forced
		// reconnect can never race the stream's removal.
		st := &watcherState{}
		done := make(chan []stream.Detection, 1)
		go func() {
			wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			var out []stream.Detection
			next, plan := 0, 0
			ws, err := c.Watch(wctx, "fz", next)
			if err != nil {
				t.Errorf("watch: %v", err)
				done <- out
				return
			}
			defer func() {
				if ws != nil {
					ws.Close()
				}
			}()
			for {
				fr, err := ws.Next()
				if err != nil {
					t.Errorf("watch frame at cursor %d: %v", next, err)
					done <- out
					return
				}
				if fr.Final {
					done <- out
					return
				}
				if fr.Detection == nil || fr.Index != next {
					t.Errorf("frame %+v out of sequence at cursor %d", fr, next)
					done <- out
					return
				}
				out = append(out, *fr.Detection)
				next = fr.Next
				if len(watchPlan) > 0 && !st.stop.Load() {
					b := watchPlan[plan%len(watchPlan)]
					plan++
					if b%5 == 0 {
						ws.Close()
						ws, err = c.Watch(wctx, "fz", next)
						if err != nil {
							t.Errorf("reconnect at %d: %v", next, err)
							done <- out
							return
						}
					}
				}
				st.cursor.Store(int64(next))
			}
		}()

		// Push with fuzz-chosen batch boundaries.
		bi := 0
		for off := 0; off < len(data); {
			n := 64
			if len(batchPlan) > 0 {
				n = 1 + int(batchPlan[bi%len(batchPlan)])
				bi++
			}
			end := min(off+n, len(data))
			if _, err := c.Push(ctx, "fz", data[off:end]); err != nil {
				t.Fatal(err)
			}
			off = end
		}
		srv.Flush()
		settled, err := c.Detections(ctx, "fz", 1_000_000_000) // clamped: Next == settled
		if err != nil {
			t.Fatal(err)
		}
		st.await(t, settled.Next)
		rep, err := c.DeleteStream(ctx, "fz")
		if err != nil {
			t.Fatal(err)
		}
		got := <-done

		want, err := hub.Reference(kind.Config, data)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := detJSON(t, got), detJSON(t, want); g != w {
			t.Errorf("watch transcript != Reference (len %d):\n got %s\nwant %s", len(data), g, w)
		}
		if g, w := detJSON(t, got), detJSON(t, rep.Detections); g != w {
			t.Errorf("watch transcript != final report (len %d)", len(data))
		}
		srv.CloseHub(t)
	})
}
