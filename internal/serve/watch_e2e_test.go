package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"etsc/internal/client"
	"etsc/internal/hub"
	"etsc/internal/serve/servetest"
	"etsc/internal/stream"
)

// detJSON renders a detection transcript as one JSON array — the
// byte-for-byte comparison unit for watch-vs-cursor equivalence.
func detJSON(t testing.TB, dets []stream.Detection) string {
	t.Helper()
	raw, err := json.Marshal(dets)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// watcherState coordinates a reconnecting watcher with the goroutine that
// will eventually DELETE the stream, closing the reconnect-vs-delete race:
// the watcher publishes its cursor only AFTER any forced reconnect for that
// frame has completed, and checks stop before tearing a connection down. A
// deleter that (1) waits for cursor == settled, (2) sets stop, (3) then
// deletes can never strand the watcher mid-reconnect against a gone stream.
type watcherState struct {
	cursor atomic.Int64
	stop   atomic.Bool
}

// await blocks until the watcher has delivered (and finished reconnecting
// past) at least n frames, then forbids further forced reconnects.
func (st *watcherState) await(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for st.cursor.Load() < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("watcher stuck at cursor %d, want %d", st.cursor.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	st.stop.Store(true)
}

// watchTranscript subscribes to id over HTTP and collects the full feed,
// forcing a reconnect (tear the connection down, resume at the frame
// cursor) after every reconnectEvery detection frames while st permits it.
// It verifies frame indices are strictly sequential from the start cursor
// and returns the delivered detections.
func watchTranscript(t *testing.T, c *client.Client, id string, reconnectEvery int, st *watcherState) []stream.Detection {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var out []stream.Detection
	next := 0
	sinceReconnect := 0
	ws, err := c.Watch(ctx, id, next)
	if err != nil {
		t.Errorf("watch %s: %v", id, err)
		return nil
	}
	defer func() {
		if ws != nil {
			ws.Close()
		}
	}()
	for {
		f, err := ws.Next()
		if err != nil {
			t.Errorf("watch %s: frame error before final: %v", id, err)
			return out
		}
		if f.Final {
			if f.Next != next {
				t.Errorf("watch %s: final frame next=%d, cursor %d", id, f.Next, next)
			}
			return out
		}
		if f.Detection == nil || f.Index != next || f.Next != next+1 {
			t.Errorf("watch %s: frame %+v out of sequence (cursor %d)", id, f, next)
			return out
		}
		out = append(out, *f.Detection)
		next = f.Next
		sinceReconnect++
		if reconnectEvery > 0 && sinceReconnect >= reconnectEvery && !st.stop.Load() {
			sinceReconnect = 0
			ws.Close()
			ws, err = c.Watch(ctx, id, next)
			if err != nil {
				t.Errorf("watch %s: reconnect at %d: %v", id, next, err)
				return out
			}
		}
		st.cursor.Store(int64(next)) // publish only after the reconnect settled
	}
}

// runWatchEquivalence drives the full battery over one server stack: per
// stream, a live watcher (with forced mid-stream reconnects) and a
// concurrent cursor poller consume the feed while batches push, and every
// transcript — subscription, paged, final report — must be byte-identical
// to each other and to the serial hub.Reference oracle.
func runWatchEquivalence(t *testing.T, srv *servetest.TestServer, kinds []hub.Kind, seed int64, nStreams int) {
	t.Helper()
	c := srv.Client
	ctx := context.Background()
	gens, err := hub.DemoStreams(kinds, seed, nStreams, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gens {
		if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: kinds[i%len(kinds)].Name}); err != nil {
			t.Fatalf("create %s: %v", g.ID, err)
		}
	}

	// Live consumers: one reconnecting watcher and one cursor poller per
	// stream, both racing the pushes.
	watchOut := make(map[string]chan []stream.Detection, len(gens))
	watchSt := make(map[string]*watcherState, len(gens))
	pollOut := make(map[string]chan []stream.Detection, len(gens))
	pollCtx, stopPolls := context.WithCancel(ctx)
	defer stopPolls()
	for _, g := range gens {
		wch := make(chan []stream.Detection, 1)
		watchOut[g.ID] = wch
		st := &watcherState{}
		watchSt[g.ID] = st
		go func(id string) {
			wch <- watchTranscript(t, c, id, 2, st)
		}(g.ID)
		pch := make(chan []stream.Detection, 1)
		pollOut[g.ID] = pch
		go func(id string) {
			var dets []stream.Detection
			for {
				page, err := c.Detections(ctx, id, len(dets))
				if err != nil {
					pch <- dets // stream deleted; transcript is whatever settled
					return
				}
				dets = append(dets, page.Detections...)
				select {
				case <-pollCtx.Done():
					pch <- dets
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
		}(g.ID)
	}

	for _, g := range gens {
		for off := 0; off < len(g.Data); off += 80 {
			end := min(off+80, len(g.Data))
			if _, err := c.Push(ctx, g.ID, g.Data[off:end]); err != nil {
				t.Fatalf("push %s: %v", g.ID, err)
			}
		}
	}
	srv.Flush()

	transcripts := make(map[string][]stream.Detection, len(gens))
	for i, g := range gens {
		// Paged transcript after quiescence: the settled prefix in one page.
		page, err := c.Detections(ctx, g.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Handshake before DELETE: the watcher must be caught up to the
		// settled prefix and done reconnecting, so the final frames land on a
		// live connection.
		watchSt[g.ID].await(t, page.Next)
		rep, err := c.DeleteStream(ctx, g.ID)
		if err != nil {
			t.Fatalf("delete %s: %v", g.ID, err)
		}
		watched := <-watchOut[g.ID]
		transcripts[g.ID] = watched
		want, err := hub.Reference(kinds[i%len(kinds)].Config, g.Data)
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := detJSON(t, watched), detJSON(t, want); got != exp {
			t.Errorf("%s: watch transcript != Reference:\n got %s\nwant %s", g.ID, got, exp)
		}
		if got, exp := detJSON(t, watched), detJSON(t, rep.Detections); got != exp {
			t.Errorf("%s: watch transcript != final report", g.ID)
		}
		// The pre-delete page is a byte-identical prefix of the watch feed.
		if got, exp := detJSON(t, watched[:len(page.Detections)]), detJSON(t, page.Detections); got != exp {
			t.Errorf("%s: paged settled prefix != watch prefix:\n got %s\nwant %s", g.ID, exp, got)
		}
	}
	stopPolls()
	for _, g := range gens {
		// The concurrent poller stopped at an arbitrary cursor (or at stream
		// deletion); whatever it saw must be a byte-identical prefix of the
		// subscription transcript — same order, nothing skipped or invented.
		polled := <-pollOut[g.ID]
		watched := transcripts[g.ID]
		if len(polled) > len(watched) {
			t.Errorf("%s: poller saw %d detections, watch only %d", g.ID, len(polled), len(watched))
			continue
		}
		if got, exp := detJSON(t, polled), detJSON(t, watched[:len(polled)]); got != exp {
			t.Errorf("%s: concurrent cursor transcript != watch prefix:\n got %s\nwant %s", g.ID, got, exp)
		}
	}
}

// TestWatchCursorEquivalence is the tentpole battery: flat and sharded
// hubs at workers {1, 4, GOMAXPROCS}, each stream consumed live by a
// reconnecting SSE watcher and a concurrent cursor poller while batches
// push, all transcripts byte-identical to the Reference oracle.
func TestWatchCursorEquivalence(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("flat-w%d", workers), func(t *testing.T) {
			srv := servetest.New(t, hub.Config{Workers: workers}, kinds)
			runWatchEquivalence(t, srv, kinds, 61, 4)
			srv.CloseHub(t)
		})
		t.Run(fmt.Sprintf("sharded-w%d", workers), func(t *testing.T) {
			srv := servetest.NewSharded(t, hub.ShardedConfig{Shards: 3, Config: hub.Config{Workers: workers}}, kinds)
			runWatchEquivalence(t, srv, kinds, 67, 4)
			srv.CloseHub(t)
		})
	}
}

// TestConcurrentCursorAndWatchIdentical pins satellite coverage: a cursor
// poller and a watcher consuming the same stream concurrently see the
// identical transcript (the poller's final pass runs after quiescence, so
// both observe the complete settled prefix).
func TestConcurrentCursorAndWatchIdentical(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	srv := servetest.New(t, hub.Config{Workers: 4}, kinds)
	c := srv.Client
	ctx := context.Background()
	gens, err := hub.DemoStreams(kinds, 71, 1, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	g := gens[0]
	if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: g.Kind}); err != nil {
		t.Fatal(err)
	}
	wch := make(chan []stream.Detection, 1)
	wst := &watcherState{}
	go func() { wch <- watchTranscript(t, c, g.ID, 3, wst) }()

	var polled []stream.Detection
	pollDone := make(chan struct{})
	pollStop := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			page, err := c.Detections(ctx, g.ID, len(polled))
			if err != nil {
				return
			}
			polled = append(polled, page.Detections...)
			select {
			case <-pollStop:
				// One final pass after quiescence so the poller observes the
				// full settled prefix, then exit.
				page, err := c.Detections(ctx, g.ID, len(polled))
				if err == nil {
					polled = append(polled, page.Detections...)
				}
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	for off := 0; off < len(g.Data); off += 64 {
		end := min(off+64, len(g.Data))
		if _, err := c.Push(ctx, g.ID, g.Data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	srv.Flush()
	close(pollStop)
	<-pollDone

	settled, err := c.Detections(ctx, g.ID, 1_000_000_000) // clamped: Next == settled
	if err != nil {
		t.Fatal(err)
	}
	wst.await(t, settled.Next)
	rep, err := c.DeleteStream(ctx, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	watched := <-wch
	if got, exp := detJSON(t, watched), detJSON(t, rep.Detections); got != exp {
		t.Errorf("watch transcript != final report:\n got %s\nwant %s", got, exp)
	}
	// The poller saw everything settled at quiescence; the watch feed's
	// prefix of that length must be byte-identical.
	if got, exp := detJSON(t, watched[:len(polled)]), detJSON(t, polled); got != exp {
		t.Errorf("concurrent cursor transcript != watch prefix:\n got %s\nwant %s", exp, got)
	}
	srv.CloseHub(t)
}

// TestDeleteUnderWatch is the satellite regression: DELETE /v1/streams/{id}
// with a live SSE watcher attached must terminate the subscription with a
// clean Final frame (followed by EOF), not a hung connection.
func TestDeleteUnderWatch(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	srv := servetest.New(t, hub.Config{Workers: 2}, kinds)
	c := srv.Client
	ctx := context.Background()
	if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: "doomed", Kind: kinds[0].Name}); err != nil {
		t.Fatal(err)
	}
	ws, err := c.Watch(ctx, "doomed", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	type result struct {
		frames []client.WatchFrame
		err    error
	}
	done := make(chan result, 1)
	go func() {
		var frames []client.WatchFrame
		for {
			f, err := ws.Next()
			if err != nil {
				done <- result{frames, err}
				return
			}
			frames = append(frames, f)
			if f.Final {
				// Feed must end cleanly right after the final frame.
				_, err := ws.Next()
				done <- result{frames, err}
				return
			}
		}
	}()

	// Let the subscription attach, then delete out from under it.
	time.Sleep(20 * time.Millisecond)
	if _, err := c.DeleteStream(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if len(res.frames) == 0 || !res.frames[len(res.frames)-1].Final {
			t.Fatalf("watcher ended without a Final frame: %+v", res.frames)
		}
		if !errors.Is(res.err, io.EOF) {
			t.Errorf("after Final frame: err = %v, want io.EOF", res.err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("watcher hung after DELETE — no Final frame")
	}
	srv.CloseHub(t)
}

// TestCursorEdgeCases pins the satellite cursor behaviours: ?since= far
// beyond the settled prefix clamps (empty page at the settled boundary,
// nothing skipped, no error) and a detections page immediately after
// hub.Close is a clean structured 404 — the stream set is empty, not
// wedged.
func TestCursorEdgeCases(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	srv := servetest.New(t, hub.Config{Workers: 2}, kinds)
	c := srv.Client
	ctx := context.Background()
	gens, err := hub.DemoStreams(kinds, 73, 1, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	g := gens[0]
	if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: g.Kind}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Push(ctx, g.ID, g.Data); err != nil {
		t.Fatal(err)
	}
	srv.Flush()

	base, err := c.Detections(ctx, g.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Far-overshot cursor: clamped to the settled boundary.
	far, err := c.Detections(ctx, g.ID, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if far.Since != base.Next || far.Next != base.Next || len(far.Detections) != 0 {
		t.Errorf("overshot cursor page %+v, want empty page clamped to %d", far, base.Next)
	}

	// Close the hub with the stream still attached, then page: structured
	// 404, immediately.
	srv.CloseHub(t)
	start := time.Now()
	_, err = c.Detections(ctx, g.ID, 0)
	servetest.APIErrOf(t, err, http.StatusNotFound, client.CodeUnknownStream)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("post-Close detections page took %v", elapsed)
	}
	// And watch after close: the hub refuses new subscriptions.
	_, err = c.Watch(ctx, g.ID, 0)
	servetest.APIErrOf(t, err, http.StatusServiceUnavailable, client.CodeClosed)
}

// TestWatchNDJSON pins the ?format=ndjson variant: same frames, one JSON
// object per line, same exactly-once transcript.
func TestWatchNDJSON(t *testing.T) {
	kinds := servetest.DemoKinds(t)
	srv := servetest.New(t, hub.Config{Workers: 2}, kinds)
	c, ts := srv.Client, srv.HTTP
	ctx := context.Background()
	gens, err := hub.DemoStreams(kinds, 79, 1, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	g := gens[0]
	if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: g.Kind}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/streams/" + g.ID + "/watch?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("ndjson content type %q", ct)
	}
	frames := make(chan client.WatchFrame, 256)
	go func() {
		defer close(frames)
		dec := json.NewDecoder(resp.Body)
		for {
			var f client.WatchFrame
			if err := dec.Decode(&f); err != nil {
				return
			}
			frames <- f
		}
	}()

	if _, err := c.Push(ctx, g.ID, g.Data); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	rep, err := c.DeleteStream(ctx, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Detection
	sawFinal := false
	deadline := time.After(30 * time.Second)
	for !sawFinal {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatal("ndjson feed closed without a final frame")
			}
			if f.Final {
				sawFinal = true
				break
			}
			if f.Detection == nil || f.Index != len(got) {
				t.Fatalf("ndjson frame %+v out of sequence at %d", f, len(got))
			}
			got = append(got, *f.Detection)
		case <-deadline:
			t.Fatal("ndjson feed did not finalize")
		}
	}
	if gotJSON, expJSON := detJSON(t, got), detJSON(t, rep.Detections); gotJSON != expJSON {
		t.Errorf("ndjson transcript != final report:\n got %s\nwant %s", gotJSON, expJSON)
	}
	srv.CloseHub(t)
}
