// Package servetest is the shared scaffolding for internal/serve's test
// batteries: hub + server + typed-client construction over the demo kinds,
// the slow-classifier kind backpressure tests saturate deterministically,
// and the raw-HTTP/error-envelope assertion helpers. The e2e, error, watch,
// metrics, and soak batteries all build on it instead of each carrying its
// own copy.
//
// It lives outside the serve package (tests import it from `package
// serve_test`) so the helpers can construct real serve.Server values
// without an import cycle.
package servetest

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"etsc/internal/client"
	"etsc/internal/etsc"
	"etsc/internal/hub"
	"etsc/internal/serve"
)

// TestServer bundles one server stack: the hub (exactly one of Hub/Sharded
// is non-nil), the serve.Server handler, the live HTTP listener, and the
// typed client pointed at it. The listener is closed by t.Cleanup; the hub
// is the test's to Close (reports are part of most batteries' assertions).
type TestServer struct {
	Hub     *hub.Hub
	Sharded *hub.ShardedHub
	Srv     *serve.Server
	HTTP    *httptest.Server
	Client  *client.Client
}

// Flush waits until the underlying hub is quiescent.
func (ts *TestServer) Flush() {
	if ts.Sharded != nil {
		ts.Sharded.Flush()
		return
	}
	ts.Hub.Flush()
}

// CloseHub closes the underlying hub, failing the test on error.
func (ts *TestServer) CloseHub(t testing.TB) {
	t.Helper()
	var err error
	if ts.Sharded != nil {
		_, err = ts.Sharded.Close()
	} else {
		_, err = ts.Hub.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
}

// New builds a flat hub + server over kinds and returns the stack with a
// typed client attached.
func New(t testing.TB, cfg hub.Config, kinds []hub.Kind) *TestServer {
	t.Helper()
	h, err := hub.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(h, kinds)
	if err != nil {
		t.Fatal(err)
	}
	return finish(t, &TestServer{Hub: h, Srv: srv})
}

// NewSharded is New over a ShardedHub.
func NewSharded(t testing.TB, cfg hub.ShardedConfig, kinds []hub.Kind) *TestServer {
	t.Helper()
	h, err := hub.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewSharded(h, kinds)
	if err != nil {
		t.Fatal(err)
	}
	return finish(t, &TestServer{Sharded: h, Srv: srv})
}

func finish(t testing.TB, ts *TestServer) *TestServer {
	t.Helper()
	ts.HTTP = httptest.NewServer(ts.Srv)
	t.Cleanup(ts.HTTP.Close)
	c, err := client.New(ts.HTTP.URL)
	if err != nil {
		t.Fatal(err)
	}
	ts.Client = c
	return ts
}

// demoKindsOnce trains the seed-3 demo kinds once per test binary: kinds
// are read-only after construction (Attach copies the StreamConfig), so
// every test can share them.
var demoKindsOnce = sync.OnceValues(func() ([]hub.Kind, error) { return hub.DemoKinds(3) })

// DemoKinds returns the shared demo kinds.
func DemoKinds(t testing.TB) []hub.Kind {
	t.Helper()
	kinds, err := demoKindsOnce()
	if err != nil {
		t.Fatal(err)
	}
	return kinds
}

// slowClassifier is an EarlyClassifier whose every decision sleeps,
// keeping the drain worker busy so queue-full backpressure is
// deterministic in the 429/shed tests.
type slowClassifier struct{ delay time.Duration }

func (s slowClassifier) Name() string    { return "slow" }
func (s slowClassifier) FullLength() int { return 64 }
func (s slowClassifier) ClassifyPrefix(prefix []float64) etsc.Decision {
	time.Sleep(s.delay)
	return etsc.Decision{}
}
func (s slowClassifier) ForcedLabel(series []float64) int { return 0 }

// SlowKind serves the slow pipeline for backpressure tests.
func SlowKind() hub.Kind {
	return hub.Kind{
		Name:   "slow",
		Spec:   etsc.Spec{Algo: "slow"},
		Config: hub.StreamConfig{Classifier: slowClassifier{delay: 30 * time.Millisecond}, Stride: 16, Step: 16},
	}
}

// APIErrOf asserts err is a typed *client.APIError with the wanted status
// and code.
func APIErrOf(t testing.TB, err error, status int, code client.ErrorCode) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %d/%s error, got nil", status, code)
	}
	ae, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("want *client.APIError, got %T: %v", err, err)
	}
	if ae.Status != status || ae.Code != code {
		t.Fatalf("want %d/%s, got %d/%s (%s)", status, code, ae.Status, ae.Code, ae.Message)
	}
	if ae.Message == "" {
		t.Error("empty error message")
	}
}

// RawStatus performs an untyped request and returns status + body.
func RawStatus(t testing.TB, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

// EnvelopeCode decodes the structured error code from a raw /v1 body.
func EnvelopeCode(t testing.TB, body string) client.ErrorCode {
	t.Helper()
	var env client.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body %q is not the JSON envelope: %v", body, err)
	}
	return env.Error.Code
}
