package serve

// SpecStreamConfig exposes specStreamConfig to the external serve_test
// package, which uses it to build Reference oracles for spec-override
// streams.
var SpecStreamConfig = specStreamConfig
