package serve

// SpecStreamConfig exposes specStreamConfig to the external serve_test
// package, which uses it to build Reference oracles for spec-override
// streams.
var SpecStreamConfig = specStreamConfig

// BeginRestore/EndRestore expose the boot-restore readiness gate so the
// healthz battery can hold the server in the "restore in flight" state
// deterministically instead of racing a real RestoreFromDir.
func (s *Server) BeginRestore() { s.restoring.Add(1) }
func (s *Server) EndRestore()   { s.restoring.Add(-1) }
