// GET /metrics — Prometheus text exposition for the serving layer.
//
// Two feeding styles, matching internal/metrics' split:
//
//   - Hot-path instruments (push latency, batch/drop/shed counters) live in
//     the hub and are registered by hub.(*Hub).SetMetrics — atomic updates
//     on the ingest path, per-shard labels on a sharded hub.
//   - Everything derived from state — per-stream queue depth and watcher
//     counts, per-kind detection totals, per-shard backlog — is registered
//     here as scrape-time Collect families over hub.Snapshot joined with
//     the server's registration metadata: zero cost between scrapes, always
//     consistent with what /v1/streams reports.
//
// Naming scheme (DESIGN.md §Layer 10): etsc_hub_* = hub hot path,
// etsc_stream_* = per-stream (stream label), etsc_kind_* = per-kind (kind
// label), etsc_shard_* = per-shard (shard label), bare etsc_* = hub-wide.
// Per-stream families are capped at maxStreamSeries series (lowest stream
// IDs win, deterministically) so a 100k-stream fleet cannot turn one scrape
// into a cardinality explosion; etsc_stream_series_omitted counts what the
// cap hid, so dashboards know when to switch to the aggregate families.
package serve

import (
	"net/http"
	"sort"
	"strconv"

	"etsc/internal/hub"
	"etsc/internal/metrics"
)

// maxStreamSeries bounds the per-stream families' cardinality per scrape.
const maxStreamSeries = 64

// EnableMetrics installs reg (a fresh registry when nil) behind GET
// /metrics and registers the serving layer's scrape-time families. It
// returns the registry so the caller can thread the same one through
// hub.SetMetrics and its own instruments. Calling it again is a no-op
// returning the installed registry.
func (s *Server) EnableMetrics(reg *metrics.Registry) *metrics.Registry {
	s.mu.Lock()
	if s.reg != nil {
		reg = s.reg
		s.mu.Unlock()
		return reg
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s.reg = reg
	s.mu.Unlock()

	reg.Collect("etsc_streams", "Attached streams.", metrics.TypeGauge,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.hub.Stats().Streams))
		})
	reg.Collect("etsc_watchers", "Live watch subscriptions across all streams.", metrics.TypeGauge,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.hub.Stats().Watchers))
		})
	reg.Collect("etsc_queue_depth", "Batches accepted but not yet drained, hub-wide.", metrics.TypeGauge,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.hub.Stats().QueuedBatches))
		})
	reg.Collect("etsc_detections_total", "Detections across all live streams (settled and pending).", metrics.TypeCounter,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.hub.Stats().Detections))
		})
	reg.Collect("etsc_recanted_total", "Detections recanted by full-window verification, across live streams.", metrics.TypeCounter,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.hub.Stats().Recanted))
		})

	perStream := func(name, help string, typ metrics.Type, field func(hub.StreamStats) float64) {
		reg.Collect(name, help, typ, func(emit func(float64, ...metrics.Label)) {
			snap := s.hub.Snapshot()
			for _, id := range cappedStreamIDs(snap) {
				emit(field(snap[id]), metrics.L("stream", id))
			}
		})
	}
	perStream("etsc_stream_queue_depth", "Batches queued per stream (capped series; see etsc_stream_series_omitted).",
		metrics.TypeGauge, func(st hub.StreamStats) float64 { return float64(st.QueuedBatches) })
	perStream("etsc_stream_watchers", "Live watch subscriptions per stream.",
		metrics.TypeGauge, func(st hub.StreamStats) float64 { return float64(st.Watchers) })
	perStream("etsc_stream_dropped_batches_total", "Batches rejected per stream under the Drop policy.",
		metrics.TypeCounter, func(st hub.StreamStats) float64 { return float64(st.DroppedBatches) })
	perStream("etsc_stream_shed_batches_total", "Batches evicted per stream under the Shed policy.",
		metrics.TypeCounter, func(st hub.StreamStats) float64 { return float64(st.ShedBatches) })
	perStream("etsc_stream_detections_total", "Detections per stream (settled and pending).",
		metrics.TypeCounter, func(st hub.StreamStats) float64 { return float64(st.Detections) })
	reg.Collect("etsc_stream_series_omitted", "Streams hidden from the per-stream families by the cardinality cap.",
		metrics.TypeGauge, func(emit func(float64, ...metrics.Label)) {
			n := s.hub.Stats().Streams - maxStreamSeries
			if n < 0 {
				n = 0
			}
			emit(float64(n))
		})

	reg.Collect("etsc_checkpoint_writes_total", "Checkpoint files written by the background checkpointer.", metrics.TypeCounter,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.ckptWrites.Load()))
		})
	reg.Collect("etsc_checkpoint_restored_total", "Streams restored from checkpoints at boot.", metrics.TypeCounter,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.ckptRestored.Load()))
		})
	reg.Collect("etsc_checkpoint_fallbacks_total", "Checkpoints whose state was rejected at boot; stream restarted fresh.", metrics.TypeCounter,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.ckptFallbacks.Load()))
		})
	reg.Collect("etsc_checkpoint_skipped_total", "Checkpoint files skipped at boot as undecodable or unservable.", metrics.TypeCounter,
		func(emit func(float64, ...metrics.Label)) {
			emit(float64(s.ckptSkipped.Load()))
		})

	reg.Collect("etsc_kind_detections_total", "Detections per served kind, across its live streams.", metrics.TypeCounter,
		func(emit func(float64, ...metrics.Label)) {
			for kind, n := range s.kindDetections() {
				emit(float64(n), metrics.L("kind", kind))
			}
		})
	reg.Collect("etsc_kind_streams", "Attached streams per served kind.", metrics.TypeGauge,
		func(emit func(float64, ...metrics.Label)) {
			for kind, n := range s.kindStreams() {
				emit(float64(n), metrics.L("kind", kind))
			}
		})

	if s.sharded != nil {
		shardLabel := func(i int) metrics.Label { return metrics.L("shard", strconv.Itoa(i)) }
		reg.Collect("etsc_shard_queue_depth", "Batches queued per shard.", metrics.TypeGauge,
			func(emit func(float64, ...metrics.Label)) {
				for _, st := range s.sharded.ShardTotals() {
					emit(float64(st.QueuedBatches), shardLabel(st.Shard))
				}
			})
		reg.Collect("etsc_shard_streams", "Attached streams per shard.", metrics.TypeGauge,
			func(emit func(float64, ...metrics.Label)) {
				for _, st := range s.sharded.ShardTotals() {
					emit(float64(st.Streams), shardLabel(st.Shard))
				}
			})
		reg.Collect("etsc_shard_detections_total", "Detections per shard, across its live streams.", metrics.TypeCounter,
			func(emit func(float64, ...metrics.Label)) {
				for _, st := range s.sharded.ShardTotals() {
					emit(float64(st.Detections), shardLabel(st.Shard))
				}
			})
	}
	return reg
}

// cappedStreamIDs returns up to maxStreamSeries stream IDs from snap in
// sorted order — deterministic, so the exposed series set is stable from
// scrape to scrape while the fleet is stable.
func cappedStreamIDs(snap map[string]hub.StreamStats) []string {
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) > maxStreamSeries {
		ids = ids[:maxStreamSeries]
	}
	return ids
}

// kindDetections sums live detections per registered kind.
func (s *Server) kindDetections() map[string]int {
	snap := s.hub.Snapshot()
	out := map[string]int{}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, st := range snap {
		if m, ok := s.meta[id]; ok {
			out[m.kind] += st.Detections
		}
	}
	return out
}

// kindStreams counts attached streams per registered kind.
func (s *Server) kindStreams() map[string]int {
	snap := s.hub.Snapshot()
	out := map[string]int{}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range snap {
		if m, ok := s.meta[id]; ok {
			out[m.kind]++
		}
	}
	return out
}

// handleMetrics serves the Prometheus exposition; 404 until EnableMetrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	if reg == nil {
		http.Error(w, "metrics not enabled on this server", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := reg.WriteTo(w); err != nil {
		// Connection-level failure; nothing useful to write.
		return
	}
}
