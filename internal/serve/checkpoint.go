// Durable checkpoints for the serving layer: each stream's exported hub
// snapshot, wrapped with the registration metadata (kind, spec, engine)
// needed to rebuild its trained classifier, written atomically to a
// directory the next boot can restore from.
//
// The frame deliberately carries no model weights — DESIGN.md §Layer 12:
// classifiers are deterministic functions of (kind dataset, spec), so the
// restoring server retrains through the same registry pipeline and the
// checkpoint stays small and version-stable. A checkpoint that fails
// validation at boot degrades to a counted fresh-start fallback (the
// stream re-attaches with its kind's config at position zero) instead of
// failing the boot: a monitoring fleet must come back up with whatever
// state survived.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"etsc/internal/etsc"
	"etsc/internal/hub"
	"etsc/internal/snap"
)

// checkpointKind and checkpointVersion tag the serve-layer checkpoint
// frame. The payload wraps the hub's own self-validating stream-state
// frame, so corruption is caught twice: at the outer CRC and again when
// the inner frame restores.
const (
	checkpointKind    = "etsc-checkpoint"
	checkpointVersion = 1
)

// ExportCheckpoint renders stream id as one self-contained checkpoint
// frame: registration metadata plus the hub's exported state. The export
// cuts at a batch boundary; the stream keeps running.
func (s *Server) ExportCheckpoint(id string) ([]byte, error) {
	state, err := s.hub.Export(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	m := s.meta[id]
	s.mu.Unlock()
	var w snap.Writer
	w.String(id)
	w.String(m.kind)
	w.String(m.spec)
	w.String(m.engine)
	w.Blob(state)
	return snap.Encode(checkpointKind, checkpointVersion, w.Bytes()), nil
}

// CheckpointMeta is a decoded checkpoint frame: the stream's identity,
// the registration metadata needed to rebuild its trained classifier, and
// the opaque hub state frame. DecodeCheckpoint produces it; the router
// front tier uses it to restore a dead backend's streams onto survivors
// from shared checkpoint storage.
type CheckpointMeta struct {
	ID     string
	Kind   string
	Spec   string
	Engine string
	State  []byte
}

// DecodeCheckpoint validates and unpacks one serve-layer checkpoint frame
// (the .ckpt file format ExportCheckpoint writes). Only the outer frame
// is validated here; the inner hub state frame re-validates when it is
// restored.
func DecodeCheckpoint(frame []byte) (CheckpointMeta, error) {
	var m CheckpointMeta
	kind, ver, payload, err := snap.Decode(frame)
	if err != nil {
		return m, err
	}
	if kind != checkpointKind {
		return m, fmt.Errorf("%w: frame kind %q, want %q", snap.ErrCorrupt, kind, checkpointKind)
	}
	if ver != checkpointVersion {
		return m, fmt.Errorf("%w: checkpoint version %d, this build reads %d", snap.ErrVersion, ver, checkpointVersion)
	}
	r := snap.NewReader(payload)
	m.ID = r.String()
	m.Kind = r.String()
	m.Spec = r.String()
	m.Engine = r.String()
	m.State = r.Blob()
	if err := r.Done(); err != nil {
		return m, err
	}
	return m, nil
}

// restoreCheckpoint decodes one checkpoint frame and attaches its stream.
// A frame that decodes but whose state the hub rejects degrades to a
// fresh attach with the same configuration (fellBack true); a frame that
// does not decode, names an unserved kind, or collides with a live stream
// returns an error and attaches nothing.
func (s *Server) restoreCheckpoint(frame []byte) (id string, fellBack bool, err error) {
	m, err := DecodeCheckpoint(frame)
	if err != nil {
		return m.ID, false, err
	}
	id = m.ID
	kindName := m.Kind
	spec := m.Spec
	engine := m.Engine
	state := m.State
	k, ok := s.kinds[kindName]
	if !ok {
		return id, false, fmt.Errorf("checkpoint for %q names unserved kind %q", id, kindName)
	}
	sc := k.Config
	specStr := k.Spec.String()
	if spec != "" && spec != specStr {
		override, err := specStreamConfig(k, spec)
		if err != nil {
			return id, false, fmt.Errorf("checkpoint for %q: retrain spec %q: %w", id, spec, err)
		}
		sc = override
		specStr = spec
	}
	if engine != "" {
		mode, err := etsc.ParseEngineMode(engine)
		if err == nil {
			sc.Engine = mode
		}
	}
	meta := streamMeta{kind: k.Name, spec: specStr, engine: engine}
	if _, rerr := s.hub.Restore(state, sc); rerr != nil {
		if errors.Is(rerr, hub.ErrDuplicate) || errors.Is(rerr, hub.ErrClosed) {
			return id, false, rerr
		}
		// State rejected — corrupt inner frame, stale format, config
		// drift. Everything but runtime position is rebuildable, so
		// restart the stream fresh rather than losing it entirely.
		if aerr := s.hub.Attach(id, sc); aerr != nil {
			return id, false, fmt.Errorf("restore %q: %v; fresh attach also failed: %w", id, rerr, aerr)
		}
		s.mu.Lock()
		s.meta[id] = meta
		s.mu.Unlock()
		return id, true, nil
	}
	s.mu.Lock()
	s.meta[id] = meta
	s.mu.Unlock()
	return id, false, nil
}

// RestoreStats tallies one RestoreFromDir pass.
type RestoreStats struct {
	// Restored streams resumed exactly at their checkpointed position.
	Restored int
	// Fallbacks re-attached fresh because their state failed validation.
	Fallbacks int
	// Skipped files attached nothing: undecodable, unserved kind, or a
	// stream id already live.
	Skipped int
}

// RestoreFromDir scans dir for checkpoint files and restores each before
// the server starts accepting traffic. Corrupt or stale files are
// per-stream fallbacks or skips — counted, logged, and visible in
// /metrics — never a failed boot; the returned error covers only an
// unreadable directory. A missing dir is an empty first boot.
func (s *Server) RestoreFromDir(dir string, logf func(format string, args ...any)) (RestoreStats, error) {
	if logf == nil {
		logf = log.Printf
	}
	// Readiness gate: /v1/healthz answers 503 until this pass finishes,
	// so a router prober never routes at a half-restored backend.
	s.restoring.Add(1)
	defer s.restoring.Add(-1)
	var st RestoreStats
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ckpt") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		frame, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			st.Skipped++
			s.ckptSkipped.Add(1)
			logf("serve: checkpoint %s: %v", name, err)
			continue
		}
		id, fellBack, err := s.restoreCheckpoint(frame)
		switch {
		case err != nil:
			st.Skipped++
			s.ckptSkipped.Add(1)
			logf("serve: checkpoint %s (stream %q) skipped: %v", name, id, err)
		case fellBack:
			st.Fallbacks++
			s.ckptFallbacks.Add(1)
			logf("serve: checkpoint %s: state for %q rejected; stream restarted fresh", name, id)
		default:
			st.Restored++
			s.ckptRestored.Add(1)
		}
	}
	return st, nil
}

// Checkpointer periodically writes every live stream's checkpoint to a
// directory, atomically (write-tmp, fsync, rename), and prunes files for
// streams that no longer exist. One generation per Sync; a crash between
// generations loses at most interval's worth of replayable positions,
// never the files' integrity.
type Checkpointer struct {
	srv      *Server
	dir      string
	interval time.Duration
	logf     func(format string, args ...any)

	mu   sync.Mutex // serializes Sync against the background loop
	stop chan struct{}
	done chan struct{}
}

// NewCheckpointer prepares dir (created if missing) for periodic
// checkpoints of srv's streams every interval. Start begins the loop;
// Sync alone also works for one-shot (shutdown-time) generations.
func NewCheckpointer(srv *Server, dir string, interval time.Duration) (*Checkpointer, error) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Checkpointer{
		srv: srv, dir: dir, interval: interval, logf: log.Printf,
		stop: make(chan struct{}), done: make(chan struct{}),
	}, nil
}

// SetLogf redirects the checkpointer's diagnostics (tests).
func (c *Checkpointer) SetLogf(logf func(format string, args ...any)) { c.logf = logf }

// Start launches the background loop. Call Stop to end it.
func (c *Checkpointer) Start() {
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				if err := c.Sync(); err != nil {
					c.logf("serve: checkpoint sync: %v", err)
				}
			}
		}
	}()
}

// Stop ends the background loop and waits for an in-flight Sync to
// finish. The directory stays valid; call Sync once more after the final
// flush for a clean-shutdown generation.
func (c *Checkpointer) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

// Sync writes one checkpoint generation: every live stream exported and
// atomically persisted, then files for departed streams removed. Errors
// are per-stream and collected — one bad stream does not stop the
// generation; the first error is returned after the full pass.
func (c *Checkpointer) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	keep := map[string]bool{}
	var firstErr error
	for id := range c.srv.hub.Snapshot() {
		frame, err := c.srv.ExportCheckpoint(id)
		if err != nil {
			// The stream may have detached between Snapshot and Export;
			// that is not a fault, its file is pruned below.
			if !errors.Is(err, hub.ErrUnknownStream) && firstErr == nil {
				firstErr = fmt.Errorf("export %q: %w", id, err)
			}
			continue
		}
		name := checkpointFileName(id)
		keep[name] = true
		if err := writeFileAtomic(filepath.Join(c.dir, name), frame); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("write %q: %w", id, err)
			}
			continue
		}
		c.srv.ckptWrites.Add(1)
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	for _, e := range entries {
		name := e.Name()
		stale := strings.HasSuffix(name, ".ckpt") && !keep[name]
		torn := strings.HasPrefix(name, ".tmp-") // leftover from a crashed write
		if stale || torn {
			if err := os.Remove(filepath.Join(c.dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// checkpointFileName maps a stream id to a stable, filesystem-safe name.
// The FNV-64a suffix keeps distinct ids distinct even when sanitizing
// collapses their printable forms.
func checkpointFileName(id string) string {
	h := fnv.New64a()
	h.Write([]byte(id))
	safe := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(safe) < 64; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return fmt.Sprintf("%s-%016x.ckpt", safe, h.Sum64())
}

// writeFileAtomic lands data at path via tmp-file, fsync, rename, and a
// directory fsync — a reader (including the next boot) sees either the
// old complete file or the new complete file, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+base+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
