package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"etsc/internal/synth"
)

// randomScenario builds a random but well-formed detection/truth pair.
func randomScenario(rng *rand.Rand) ([]Detection, []GroundTruth) {
	nT := rng.Intn(8)
	var truth []GroundTruth
	pos := 0
	for i := 0; i < nT; i++ {
		pos += 10 + rng.Intn(200)
		length := 20 + rng.Intn(100)
		truth = append(truth, GroundTruth{
			Label: 1 + rng.Intn(3),
			Start: pos,
			End:   pos + length,
		})
		pos += length
	}
	nD := rng.Intn(15)
	var dets []Detection
	for i := 0; i < nD; i++ {
		at := rng.Intn(pos + 500)
		dets = append(dets, Detection{
			Start:      at - rng.Intn(50),
			DecisionAt: at,
			Label:      1 + rng.Intn(3),
		})
	}
	return dets, truth
}

// TestMatchInvariantsProperty checks the accounting identities of Match on
// random scenarios: TP <= min(#detections, #truth), TP+FN == #truth,
// TP+FP <= #detections, lead times recorded one per TP.
func TestMatchInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dets, truth := randomScenario(rng)
		tol := rng.Intn(30)
		tally := Match(dets, truth, tol)
		if tally.TP > len(dets) || tally.TP > len(truth) {
			return false
		}
		if tally.TP+tally.FN != len(truth) {
			return false
		}
		if tally.TP+tally.FP > len(dets) {
			return false
		}
		if len(tally.LeadTimes) != tally.TP {
			return false
		}
		if tally.Precision() < 0 || tally.Precision() > 1 {
			return false
		}
		if tally.Recall() < 0 || tally.Recall() > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMatchZeroToleranceSubsetProperty: raising the tolerance can only
// increase (or keep) the TP count.
func TestMatchToleranceMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dets, truth := randomScenario(rng)
		prev := -1
		for _, tol := range []int{0, 10, 50, 200} {
			tp := Match(dets, truth, tol).TP
			if tp < prev {
				return false
			}
			prev = tp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSuppressInvariantsProperty: suppression never increases the count,
// keeps only existing detections, and leaves same-label detections at
// least `radius` apart.
func TestSuppressInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dets, _ := randomScenario(rng)
		radius := 1 + rng.Intn(100)
		out := suppress(append([]Detection(nil), dets...), radius)
		if len(out) > len(dets) {
			return false
		}
		lastAt := map[int]int{}
		for _, d := range out {
			if at, ok := lastAt[d.Label]; ok && d.DecisionAt-at < radius {
				return false
			}
			lastAt[d.Label] = d.DecisionAt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMonitorDetectionInvariants runs a real monitor and checks structural
// invariants of its detections.
func TestMonitorDetectionInvariants(t *testing.T) {
	_, c := wordModel(t, 44)
	sentence, _, err := randomSentence(t)
	if err != nil {
		t.Fatal(err)
	}
	m := &Monitor{Classifier: c, Stride: 3, Step: 2}
	dets, err := m.Run(sentence)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dets {
		if d.Start%3 != 0 {
			t.Errorf("detection %d start %d not on stride grid", i, d.Start)
		}
		if d.DecisionAt < d.Start || d.DecisionAt >= d.Start+c.FullLength() {
			t.Errorf("detection %d decision point %d outside its window [%d, %d)",
				i, d.DecisionAt, d.Start, d.Start+c.FullLength())
		}
		if d.Earliness <= 0 || d.Earliness > 1 {
			t.Errorf("detection %d earliness %v out of (0,1]", i, d.Earliness)
		}
	}
}

func randomSentence(t testing.TB) ([]float64, []GroundTruth, error) {
	t.Helper()
	stream, _, err := synth.Sentence(synth.NewRand(77), synth.MorningLightSentence,
		synth.DefaultWordConfig(), 25)
	return stream, nil, err
}
