package stream

import (
	"math"
	"testing"
)

// Edge-case coverage for ground-truth matching and the tally's ratio
// metrics: empty inputs, zero-division conventions, and detections landing
// in the overlap of two tolerance-padded events.

func TestTallyZeroDivision(t *testing.T) {
	var empty Tally
	if p := empty.Precision(); p != 1 {
		t.Errorf("empty Precision = %v, want 1 (no detections = nothing wrong)", p)
	}
	if r := empty.Recall(); r != 1 {
		t.Errorf("empty Recall = %v, want 1 (no events = nothing missed)", r)
	}
	if f := empty.FPPerTP(); f != 0 {
		t.Errorf("empty FPPerTP = %v, want 0", f)
	}

	fpOnly := Tally{FP: 3}
	if p := fpOnly.Precision(); p != 0 {
		t.Errorf("FP-only Precision = %v, want 0", p)
	}
	if f := fpOnly.FPPerTP(); !math.IsInf(f, 1) {
		t.Errorf("FP-only FPPerTP = %v, want +Inf", f)
	}

	fnOnly := Tally{FN: 2}
	if r := fnOnly.Recall(); r != 0 {
		t.Errorf("FN-only Recall = %v, want 0", r)
	}
	if p := fnOnly.Precision(); p != 1 {
		t.Errorf("FN-only Precision = %v, want 1 (no detections)", p)
	}
}

func TestMatchEmptyTruth(t *testing.T) {
	dets := []Detection{
		{Start: 0, DecisionAt: 10, Label: 1},
		{Start: 20, DecisionAt: 30, Label: 2},
	}
	tally := Match(dets, nil, 5)
	if tally.TP != 0 || tally.FP != 2 || tally.FN != 0 {
		t.Errorf("empty truth: TP/FP/FN = %d/%d/%d, want 0/2/0", tally.TP, tally.FP, tally.FN)
	}
	if p := tally.Precision(); p != 0 {
		t.Errorf("Precision = %v, want 0", p)
	}
	if r := tally.Recall(); r != 1 {
		t.Errorf("Recall = %v, want 1 (nothing to find)", r)
	}
}

func TestMatchEmptyDetections(t *testing.T) {
	truth := []GroundTruth{{Label: 1, Start: 0, End: 10}, {Label: 2, Start: 50, End: 60}}
	tally := Match(nil, truth, 5)
	if tally.TP != 0 || tally.FP != 0 || tally.FN != 2 {
		t.Errorf("empty detections: TP/FP/FN = %d/%d/%d, want 0/0/2", tally.TP, tally.FP, tally.FN)
	}
	if len(tally.LeadTimes) != 0 {
		t.Errorf("LeadTimes = %v, want empty", tally.LeadTimes)
	}
}

// TestMatchOverlappingToleranceWindows puts one detection in the overlap
// of two same-label events' tolerance halos: it must claim exactly one
// event (the first in truth order), leaving the other a false negative,
// never double-counting.
func TestMatchOverlappingToleranceWindows(t *testing.T) {
	truth := []GroundTruth{
		{Label: 1, Start: 0, End: 20},
		{Label: 1, Start: 25, End: 45},
	}
	// With tolerance 10, both events' halos cover DecisionAt 22.
	dets := []Detection{{Start: 10, DecisionAt: 22, Label: 1}}
	tally := Match(dets, truth, 10)
	if tally.TP != 1 || tally.FP != 0 || tally.FN != 1 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 1/0/1", tally.TP, tally.FP, tally.FN)
	}
	// The first truth entry claims it: lead time is measured against
	// event 0's end (20 - 22 = -2), not event 1's.
	if len(tally.LeadTimes) != 1 || tally.LeadTimes[0] != -2 {
		t.Errorf("LeadTimes = %v, want [-2]", tally.LeadTimes)
	}
}

// TestMatchDuplicateHitNotFP: a second detection on an already-claimed
// event is neither a TP nor an FP.
func TestMatchDuplicateHitNotFP(t *testing.T) {
	truth := []GroundTruth{{Label: 1, Start: 0, End: 40}}
	dets := []Detection{
		{Start: 0, DecisionAt: 10, Label: 1},
		{Start: 4, DecisionAt: 14, Label: 1},
	}
	tally := Match(dets, truth, 0)
	if tally.TP != 1 || tally.FP != 0 || tally.FN != 0 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 1/0/0", tally.TP, tally.FP, tally.FN)
	}
}

// TestMatchLabelMismatch: right place, wrong label is a false positive and
// the event stays unclaimed.
func TestMatchLabelMismatch(t *testing.T) {
	truth := []GroundTruth{{Label: 1, Start: 0, End: 40}}
	dets := []Detection{{Start: 0, DecisionAt: 10, Label: 2}}
	tally := Match(dets, truth, 5)
	if tally.TP != 0 || tally.FP != 1 || tally.FN != 1 {
		t.Errorf("TP/FP/FN = %d/%d/%d, want 0/1/1", tally.TP, tally.FP, tally.FN)
	}
}

// TestMatchToleranceBoundaries pins the half-open halo arithmetic:
// DecisionAt == Start-tolerance is in, DecisionAt == End+tolerance is out.
func TestMatchToleranceBoundaries(t *testing.T) {
	truth := []GroundTruth{{Label: 1, Start: 100, End: 120}}
	const tol = 7
	in := Match([]Detection{{DecisionAt: 100 - tol, Label: 1}}, truth, tol)
	if in.TP != 1 {
		t.Errorf("DecisionAt at Start-tolerance should match, got TP=%d", in.TP)
	}
	lastIn := Match([]Detection{{DecisionAt: 120 + tol - 1, Label: 1}}, truth, tol)
	if lastIn.TP != 1 {
		t.Errorf("DecisionAt at End+tolerance-1 should match, got TP=%d", lastIn.TP)
	}
	out := Match([]Detection{{DecisionAt: 120 + tol, Label: 1}}, truth, tol)
	if out.TP != 0 || out.FP != 1 {
		t.Errorf("DecisionAt at End+tolerance should not match, got TP=%d FP=%d", out.TP, out.FP)
	}
}

// TestMatchCountsRecanted: recanted detections still tally TP/FP (the
// alarm did fire) but are counted in Recanted.
func TestMatchCountsRecanted(t *testing.T) {
	truth := []GroundTruth{{Label: 1, Start: 0, End: 40}}
	dets := []Detection{
		{Start: 0, DecisionAt: 10, Label: 1, Recanted: true},
		{Start: 60, DecisionAt: 70, Label: 1, Recanted: true},
	}
	tally := Match(dets, truth, 0)
	if tally.Recanted != 2 {
		t.Errorf("Recanted = %d, want 2", tally.Recanted)
	}
	if tally.TP != 1 || tally.FP != 1 {
		t.Errorf("TP/FP = %d/%d, want 1/1", tally.TP, tally.FP)
	}
}
