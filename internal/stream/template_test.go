package stream

import (
	"testing"

	"etsc/internal/synth"
)

func TestTemplateMonitorFindsPlantedBouts(t *testing.T) {
	rng := synth.NewRand(4)
	cfg := synth.DefaultChickenConfig()
	cfg.DustbathProb = 0.15
	data, intervals, err := synth.ChickenStream(rng, cfg, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	dust := synth.IntervalsOf(intervals, synth.Dustbathing)
	if len(dust) < 3 {
		t.Skipf("only %d dustbathing bouts in this stream", len(dust))
	}
	tmpl := synth.DustbathingTemplate(synth.DustbathingTemplateLen)
	mon, err := NewTemplateMonitor(tmpl, 2.5, 0)
	if err != nil {
		t.Fatal(err)
	}

	var truth []GroundTruth
	for _, iv := range dust {
		truth = append(truth, GroundTruth{Label: 1, Start: iv.Start, End: iv.End})
	}

	dets, err := mon.TopK(data, len(dust))
	if err != nil {
		t.Fatal(err)
	}
	hits, total := ScoreTemplateDetections(dets, truth, 1, len(tmpl))
	if total != len(dust) {
		t.Errorf("total %d, want %d", total, len(dust))
	}
	if float64(hits) < 0.8*float64(total) {
		t.Errorf("only %d/%d nearest neighbours are in-bout", hits, total)
	}
}

func TestTemplateMonitorRunThreshold(t *testing.T) {
	rng := synth.NewRand(5)
	cfg := synth.DefaultChickenConfig()
	cfg.DustbathProb = 0.15
	data, intervals, err := synth.ChickenStream(rng, cfg, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	dust := synth.IntervalsOf(intervals, synth.Dustbathing)
	tmpl := synth.DustbathingTemplate(synth.DustbathingTemplateLen)
	mon, err := NewTemplateMonitor(tmpl, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	dets, err := mon.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dust) > 0 && len(dets) == 0 {
		t.Error("threshold detector found nothing despite dustbathing bouts")
	}
	for _, d := range dets {
		if d.Dist > 2.0 {
			t.Errorf("detection above threshold: %v", d.Dist)
		}
		if d.End != d.Start+len(tmpl) {
			t.Errorf("end %d inconsistent with start %d", d.End, d.Start)
		}
	}
}

func TestTemplateMonitorErrors(t *testing.T) {
	if _, err := NewTemplateMonitor([]float64{1}, 1, 0); err == nil {
		t.Error("too-short template should error")
	}
	if _, err := NewTemplateMonitor([]float64{1, 2, 3}, 0, 0); err == nil {
		t.Error("non-positive threshold should error")
	}
	mon, err := NewTemplateMonitor([]float64{1, 2, 3, 4}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Run([]float64{1, 2}); err == nil {
		t.Error("stream shorter than template should error")
	}
}
