package stream

import (
	"reflect"
	"testing"

	"etsc/internal/etsc"
	"etsc/internal/synth"
)

// TestMonitorEngineModesIdentical pins the monitor half of the engine-mode
// contract: pruned and eager candidate sessions must yield byte-identical
// detections for any worker count (the hub test covers the Online path).
func TestMonitorEngineModesIdentical(t *testing.T) {
	c, stream := monitorFixture(t)
	base := &Monitor{Classifier: c, Stride: 8, Step: 8, Suppress: 75, Parallelism: 1, Engine: etsc.Eager}
	want, err := base.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no detections; the equivalence check would be vacuous")
	}
	for _, workers := range []int{1, 4, 0} {
		m := &Monitor{Classifier: c, Stride: 8, Step: 8, Suppress: 75, Parallelism: workers, Engine: etsc.Pruned}
		got, err := m.Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: pruned detections differ from eager:\n%+v\n!=\n%+v", workers, got, want)
		}
	}
}

// TestMonitorEngineValidation rejects out-of-range engine modes, matching
// the monitor's explicit-configuration style.
func TestMonitorEngineValidation(t *testing.T) {
	train, err := synth.WordDataset(synth.NewRand(11), []string{"cat", "dog"}, 4, 44, synth.DefaultWordConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := etsc.NewProbThreshold(train, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := &Monitor{Classifier: c, Engine: etsc.EngineMode(7)}
	if _, err := m.Run(make([]float64, c.FullLength())); err == nil {
		t.Fatal("invalid engine mode accepted")
	}
	if _, err := NewOnlineEngine(c, 0, 0, etsc.EngineMode(-1)); err == nil {
		t.Fatal("NewOnlineEngine accepted invalid mode")
	}
}
