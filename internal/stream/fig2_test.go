package stream

import (
	"strings"
	"testing"

	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/synth"
)

// wordModel trains a cat/dog early classifier at stream scale (utterances
// resampled to their natural duration, not stretched to 150).
func wordModel(t testing.TB, length int) (*dataset.Dataset, etsc.EarlyClassifier) {
	t.Helper()
	train, err := synth.WordDataset(synth.NewRand(11), []string{"cat", "dog"}, 30, length, synth.DefaultWordConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	if err != nil {
		t.Fatal(err)
	}
	return train, c
}

// TestFig2CathySentence reproduces the paper's Fig. 2: streaming the
// sentence "It was said that Cathy's dogmatic catechism dogmatized catholic
// doggery" past a cat/dog early classifier produces early positives on the
// embedded stems — and every single one must later be recanted, because the
// sentence contains no actual utterance of "cat" or "dog".
func TestFig2CathySentence(t *testing.T) {
	const wordLen = 44
	train, c := wordModel(t, wordLen)

	stream, intervals, err := synth.Sentence(synth.NewRand(23), synth.CathySentence, synth.DefaultWordConfig(), 30)
	if err != nil {
		t.Fatal(err)
	}

	m := &Monitor{Classifier: c, Stride: 2, Step: 2, Suppress: wordLen / 2}
	dets, err := m.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("no early detections at all — the ETSC monitor should fire on the stem words")
	}

	// Ground truth: the sentence contains no standalone cat/dog, so every
	// detection is a false positive.
	var truth []GroundTruth
	for _, iv := range intervals {
		if iv.Word == "cat" || iv.Word == "dog" {
			label := 1
			if iv.Word == "dog" {
				label = 2
			}
			truth = append(truth, GroundTruth{Label: label, Start: iv.Start, End: iv.End})
		}
	}
	tally := Match(dets, truth, 0)
	if tally.TP != 0 {
		t.Errorf("TP = %d, want 0 (no true cat/dog in the sentence)", tally.TP)
	}
	if tally.FP != len(dets) {
		t.Errorf("FP = %d, want all %d detections", tally.FP, len(dets))
	}

	// Every embedded stem should have triggered at least one detection.
	stems := map[string]int{
		"cathys": 0, "catechism": 0, "catholic": 0,
		"dogmatic": 0, "dogmatized": 0, "doggery": 0,
	}
	for _, d := range dets {
		for _, iv := range intervals {
			if _, ok := stems[iv.Word]; !ok {
				continue
			}
			if d.DecisionAt >= iv.Start && d.DecisionAt < iv.End+wordLen/2 {
				stems[iv.Word]++
			}
		}
	}
	var missing []string
	hit := 0
	for w, n := range stems {
		if n == 0 {
			missing = append(missing, w)
		} else {
			hit++
		}
	}
	t.Logf("detections: %d; stem hits: %v", len(dets), stems)
	if hit < 4 {
		t.Errorf("only %d/6 stems triggered detections (missing: %s)", hit, strings.Join(missing, ", "))
	}

	// The recant step: once the full window is visible, the verifier must
	// reject (essentially) every detection — "all of which will later have
	// to be recanted".
	v, err := NewNNVerifier(train, 0.95, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	Verify(dets, stream, wordLen, v)
	recanted := 0
	for _, d := range dets {
		if d.Recanted {
			recanted++
		}
	}
	t.Logf("recanted: %d/%d", recanted, len(dets))
	if float64(recanted) < 0.8*float64(len(dets)) {
		t.Errorf("only %d/%d detections recanted; expected (essentially) all", recanted, len(dets))
	}
}

// TestFig2TrueUtteranceIsDetected is the control: a sentence that really
// contains "cat" and "dog" must yield true positives that survive
// verification — the monitor works; the *problem setting* is what fails.
func TestFig2TrueUtteranceIsDetected(t *testing.T) {
	const wordLen = 44
	train, c := wordModel(t, wordLen)

	words := []string{"it", "was", "a", "cat", "in", "the", "morning", "dog"}
	stream, intervals, err := synth.Sentence(synth.NewRand(31), words, synth.DefaultWordConfig(), 30)
	if err != nil {
		t.Fatal(err)
	}
	m := &Monitor{Classifier: c, Stride: 2, Step: 2, Suppress: wordLen / 2}
	dets, err := m.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	var truth []GroundTruth
	for _, iv := range intervals {
		switch iv.Word {
		case "cat":
			truth = append(truth, GroundTruth{Label: 1, Start: iv.Start, End: iv.End})
		case "dog":
			truth = append(truth, GroundTruth{Label: 2, Start: iv.Start, End: iv.End})
		}
	}
	tally := Match(dets, truth, wordLen/2)
	t.Logf("control: %d detections, TP=%d FP=%d FN=%d", len(dets), tally.TP, tally.FP, tally.FN)
	if tally.TP < 2 {
		t.Errorf("true cat+dog should both be detected, TP = %d", tally.TP)
	}

	v, err := NewNNVerifier(train, 0.95, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	Verify(dets, stream, wordLen, v)
	survivors := 0
	for _, d := range dets {
		if !d.Recanted {
			survivors++
		}
	}
	if survivors == 0 {
		t.Error("at least the true detections should survive verification")
	}
}
