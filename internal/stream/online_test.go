package stream

import (
	"testing"

	"etsc/internal/etsc"
	"etsc/internal/synth"
)

// TestOnlineMatchesBatch asserts the point-at-a-time monitor produces
// exactly the same detections as the batch monitor.
func TestOnlineMatchesBatch(t *testing.T) {
	train, c := wordModel(t, 44)
	_ = train
	sentence, _, err := synth.Sentence(synth.NewRand(23), synth.CathySentence, synth.DefaultWordConfig(), 30)
	if err != nil {
		t.Fatal(err)
	}

	batch := &Monitor{Classifier: c, Stride: 2, Step: 2} // no suppression
	want, err := batch.Run(sentence)
	if err != nil {
		t.Fatal(err)
	}

	on, err := NewOnline(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := on.PushAll(sentence)

	// The batch monitor only opens candidates whose full window fits the
	// stream; the online monitor cannot know the stream will end, so drop
	// online detections whose window extends past the end.
	var gotTrimmed []Detection
	for _, d := range got {
		if d.Start+c.FullLength() <= len(sentence) {
			gotTrimmed = append(gotTrimmed, d)
		}
	}
	if len(gotTrimmed) != len(want) {
		t.Fatalf("online %d detections, batch %d", len(gotTrimmed), len(want))
	}
	for i := range want {
		if want[i] != gotTrimmed[i] {
			t.Errorf("detection %d differs: online %+v batch %+v", i, gotTrimmed[i], want[i])
		}
	}
}

func TestOnlineMemoryBounded(t *testing.T) {
	train, err := synth.WordDataset(synth.NewRand(11), []string{"cat", "dog"}, 10, 44, synth.DefaultWordConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := etsc.NewProbThreshold(train, 0.95, 10)
	if err != nil {
		t.Fatal(err)
	}
	on, err := NewOnline(c, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := synth.NewRand(1)
	for i := 0; i < 50_000; i++ {
		on.Push(rng.NormFloat64())
		if n := on.ActiveCandidates(); n > 44/4+2 {
			t.Fatalf("candidate count %d unbounded at sample %d", n, i)
		}
		if len(on.buf) > 44+2*4 {
			t.Fatalf("buffer %d unbounded at sample %d", len(on.buf), i)
		}
	}
	if on.Pos() != 50_000 {
		t.Errorf("pos %d", on.Pos())
	}
}

func TestOnlineValidation(t *testing.T) {
	if _, err := NewOnline(nil, 1, 1); err == nil {
		t.Error("nil classifier should error")
	}
	train, err := synth.WordDataset(synth.NewRand(11), []string{"cat", "dog"}, 4, 44, synth.DefaultWordConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := etsc.NewProbThreshold(train, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnline(c, -1, 1); err == nil {
		t.Error("negative stride should error")
	}
	if _, err := NewOnline(c, 1, -4); err == nil {
		t.Error("negative step should error")
	}
	if _, err := NewOnline(c, 0, 0); err != nil {
		t.Errorf("zero stride/step should default, got %v", err)
	}
}
