package stream

import (
	"errors"
	"fmt"

	"etsc/internal/etsc"
)

// Online is the point-at-a-time counterpart of Monitor: data arrives one
// sample per Push call, candidate windows are opened every Stride samples,
// and each open candidate's classifier session is advanced every Step
// samples until it commits or its window completes. Memory is bounded by
// one window of samples plus WindowLen/Stride live sessions.
//
// Online(stride, step).PushAll(stream) produces exactly the detections of
// Monitor{Stride: stride, Step: step}.Run(stream) (without suppression),
// which TestOnlineMatchesBatch asserts.
type Online struct {
	classifier etsc.EarlyClassifier
	engine     etsc.EngineMode
	stride     int
	step       int
	window     int

	pos        int // total samples consumed
	buf        []float64
	bufStart   int // stream index of buf[0]
	candidates []*onlineCandidate
}

type onlineCandidate struct {
	start   int // stream index of the candidate window start
	nextLen int // prefix length at which to next consult the classifier
	seen    int // prefix length already fed to the session
	sess    etsc.IncrementalSession
}

// NewOnline builds an online monitor on the default (pruned) engine. Like
// Monitor, a stride or step of 0 selects the default (4) and negative
// values are configuration errors.
func NewOnline(c etsc.EarlyClassifier, stride, step int) (*Online, error) {
	return NewOnlineEngine(c, stride, step, etsc.Pruned)
}

// NewOnlineEngine is NewOnline with an explicit engine mode for the
// candidate sessions; detections are identical for every mode.
func NewOnlineEngine(c etsc.EarlyClassifier, stride, step int, engine etsc.EngineMode) (*Online, error) {
	if c == nil {
		return nil, errors.New("stream: Online needs a classifier")
	}
	if stride < 0 {
		return nil, fmt.Errorf("stream: Online stride must be >= 0 (0 = default), got %d", stride)
	}
	if step < 0 {
		return nil, fmt.Errorf("stream: Online step must be >= 0 (0 = default), got %d", step)
	}
	if engine != etsc.Pruned && engine != etsc.Eager {
		return nil, fmt.Errorf("stream: Online engine must be Pruned or Eager, got %d", int(engine))
	}
	if stride == 0 {
		stride = 4
	}
	if step == 0 {
		step = 4
	}
	window := c.FullLength()
	return &Online{
		classifier: c,
		engine:     engine,
		stride:     stride,
		step:       step,
		window:     window,
		// The sample buffer's live span never exceeds window+1 points and
		// trimming reclaims dead prefixes by copy-down (below), so this one
		// allocation serves the stream forever.
		buf: make([]float64, 0, 2*(window+1)),
	}, nil
}

// Pos returns the number of samples consumed so far.
func (o *Online) Pos() int { return o.pos }

// ActiveCandidates returns the number of live candidate windows.
func (o *Online) ActiveCandidates() int { return len(o.candidates) }

// Push consumes one sample and returns any detections that fired on it.
func (o *Online) Push(v float64) []Detection {
	// Open a candidate at every stride boundary. Every candidate gets its
	// own incremental session from the engine, so each point of the stream
	// is processed once per live candidate rather than once per (candidate,
	// opportunity) pair.
	if o.pos%o.stride == 0 {
		o.candidates = append(o.candidates, &onlineCandidate{
			start:   o.pos,
			nextLen: o.step,
			sess:    etsc.OpenSessionMode(o.classifier, o.engine),
		})
	}
	o.buf = append(o.buf, v)
	o.pos++

	var out []Detection
	keep := o.candidates[:0]
	for _, c := range o.candidates {
		have := o.pos - c.start // points of this candidate's window seen
		done := false
		for c.nextLen <= have && c.nextLen <= o.window {
			base := c.start - o.bufStart
			d := c.sess.Extend(o.buf[base+c.seen : base+c.nextLen])
			c.seen = c.nextLen
			if d.Ready {
				out = append(out, Detection{
					Start:      c.start,
					DecisionAt: c.start + c.nextLen - 1,
					Label:      d.Label,
					Earliness:  float64(c.nextLen) / float64(o.window),
				})
				done = true
				break
			}
			c.nextLen += o.step
		}
		if !done && have < o.window {
			keep = append(keep, c)
		}
	}
	o.candidates = keep

	// Trim the buffer to the oldest live candidate (or the last window).
	// Reclaiming by copy-down — rather than re-slicing the dead prefix away,
	// which marches the slice window through its backing array until append
	// reallocates — keeps the stream on its construction-time buffer
	// forever: the live span is at most window points and the dead prefix is
	// trimmed once it reaches min(stride, window), so the length stays under
	// the preallocated 2·(window+1) capacity while each point is moved at
	// most once per stride of progress.
	oldest := o.pos - o.window
	for _, c := range o.candidates {
		if c.start < oldest {
			oldest = c.start
		}
	}
	trimAt := o.stride
	if trimAt > o.window {
		trimAt = o.window
	}
	if oldest-o.bufStart >= trimAt {
		n := copy(o.buf, o.buf[oldest-o.bufStart:])
		o.buf = o.buf[:n]
		o.bufStart = oldest
	}
	return out
}

// PushAll consumes a batch of samples and returns all detections.
func (o *Online) PushAll(stream []float64) []Detection {
	var out []Detection
	for _, v := range stream {
		out = append(out, o.Push(v)...)
	}
	return out
}
