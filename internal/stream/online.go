package stream

import (
	"errors"
	"fmt"

	"etsc/internal/etsc"
)

// Online is the point-at-a-time counterpart of Monitor: data arrives one
// sample per Push call, candidate windows are opened every Stride samples,
// and each open candidate's classifier session is advanced every Step
// samples until it commits or its window completes. Memory is bounded by
// one window of samples plus WindowLen/Stride live sessions.
//
// Online(stride, step).PushAll(stream) produces exactly the detections of
// Monitor{Stride: stride, Step: step}.Run(stream) (without suppression),
// which TestOnlineMatchesBatch asserts.
type Online struct {
	classifier etsc.EarlyClassifier
	engine     etsc.EngineMode
	stride     int
	step       int
	window     int

	pos        int // total samples consumed
	buf        []float64
	bufStart   int // stream index of buf[0]
	candidates []*onlineCandidate
	one        [1]float64 // Push's single-sample batch, so Push never allocates one
}

type onlineCandidate struct {
	start   int // stream index of the candidate window start
	nextLen int // prefix length at which to next consult the classifier
	seen    int // prefix length already fed to the session
	sess    etsc.IncrementalSession
}

// NewOnline builds an online monitor on the default (pruned) engine. Like
// Monitor, a stride or step of 0 selects the default (4) and negative
// values are configuration errors.
func NewOnline(c etsc.EarlyClassifier, stride, step int) (*Online, error) {
	return NewOnlineEngine(c, stride, step, etsc.Pruned)
}

// NewOnlineEngine is NewOnline with an explicit engine mode for the
// candidate sessions; detections are identical for every mode.
func NewOnlineEngine(c etsc.EarlyClassifier, stride, step int, engine etsc.EngineMode) (*Online, error) {
	if c == nil {
		return nil, errors.New("stream: Online needs a classifier")
	}
	if stride < 0 {
		return nil, fmt.Errorf("stream: Online stride must be >= 0 (0 = default), got %d", stride)
	}
	if step < 0 {
		return nil, fmt.Errorf("stream: Online step must be >= 0 (0 = default), got %d", step)
	}
	if engine != etsc.Pruned && engine != etsc.Eager {
		return nil, fmt.Errorf("stream: Online engine must be Pruned or Eager, got %d", int(engine))
	}
	if stride == 0 {
		stride = 4
	}
	if step == 0 {
		step = 4
	}
	window := c.FullLength()
	return &Online{
		classifier: c,
		engine:     engine,
		stride:     stride,
		step:       step,
		window:     window,
		// The sample buffer's live span never exceeds window+1 points and
		// trimming reclaims dead prefixes by copy-down (below), so this one
		// allocation serves the stream forever.
		buf: make([]float64, 0, 2*(window+1)),
	}, nil
}

// Pos returns the number of samples consumed so far.
func (o *Online) Pos() int { return o.pos }

// ActiveCandidates returns the number of live candidate windows.
func (o *Online) ActiveCandidates() int { return len(o.candidates) }

// Push consumes one sample and returns any detections that fired on it. It
// is the single-sample case of PushBatch (through a struct-owned one-point
// buffer, so the call itself never allocates).
func (o *Online) Push(v float64) []Detection {
	o.one[0] = v
	return o.PushBatch(o.one[:])
}

// PushBatch consumes a batch of samples as one unit and returns all
// detections that fired within it, in exactly the order point-at-a-time
// Push calls would have produced them.
//
// Instead of walking the candidate list once per point, the batch is
// processed candidate-major: candidates are opened for every stride
// boundary the batch crosses, the buffer extends once, and then each live
// candidate consumes *all* of its decision opportunities in the batch
// back-to-back — consecutive multi-point Extend calls into the same
// session, so its bank state stays hot and queued points reach the blocked
// distance kernel in as few calls as possible.
//
// Byte-identity with pointwise Push is structural: a candidate's Extend
// chunk boundaries are its opportunity lengths (seen → nextLen) in both
// orders; each candidate fires at most once, on the point DecisionAt =
// start + nextLen − 1; and pointwise emission order is (DecisionAt asc,
// then candidate order, which is ascending Start) — so sorting the
// candidate-major detections by (DecisionAt, Start) reproduces the
// pointwise transcript exactly. TestOnlinePushBatchMatchesPointwise and
// FuzzOnlinePush pin it.
func (o *Online) PushBatch(points []float64) []Detection {
	// Segment so the live span stays within the construction-time buffer:
	// after a forced trim the buffer holds at most window points, leaving
	// room for window+1 more under the 2·(window+1) capacity.
	if len(points) <= o.window+1 {
		return o.pushSegment(points)
	}
	var out []Detection
	for len(points) > 0 {
		n := o.window + 1
		if n > len(points) {
			n = len(points)
		}
		// Segments are processed in stream order, and every detection's
		// DecisionAt falls inside its own segment, so concatenation
		// preserves the global (DecisionAt, Start) order.
		out = append(out, o.pushSegment(points[:n])...)
		points = points[n:]
	}
	return out
}

func (o *Online) pushSegment(points []float64) []Detection {
	if len(points) == 0 {
		return nil
	}
	// Open a candidate at every stride boundary the segment crosses, before
	// its first point lands (the boundary point belongs to the window).
	// Every candidate gets its own incremental session from the engine, so
	// each point of the stream is processed once per live candidate rather
	// than once per (candidate, opportunity) pair.
	first := o.pos
	if r := o.pos % o.stride; r != 0 {
		first += o.stride - r
	}
	for s := first; s < o.pos+len(points); s += o.stride {
		o.candidates = append(o.candidates, &onlineCandidate{
			start:   s,
			nextLen: o.step,
			sess:    etsc.OpenSessionMode(o.classifier, o.engine),
		})
	}

	// A single-point push always fits (the steady-state length bound is
	// 2·window); a larger batch may need the dead prefix and any expired
	// span reclaimed up front to stay on the construction-time buffer.
	if len(o.buf)+len(points) > cap(o.buf) {
		o.trimTo(o.oldestLive(o.pos))
	}
	o.buf = append(o.buf, points...)
	o.pos += len(points)

	var out []Detection
	keep := o.candidates[:0]
	for _, c := range o.candidates {
		have := o.pos - c.start // points of this candidate's window seen
		base := c.start - o.bufStart
		done := false
		for c.nextLen <= have && c.nextLen <= o.window {
			d := c.sess.Extend(o.buf[base+c.seen : base+c.nextLen])
			c.seen = c.nextLen
			if d.Ready {
				out = append(out, Detection{
					Start:      c.start,
					DecisionAt: c.start + c.nextLen - 1,
					Label:      d.Label,
					Earliness:  float64(c.nextLen) / float64(o.window),
				})
				done = true
				break
			}
			c.nextLen += o.step
		}
		if !done && have < o.window {
			keep = append(keep, c)
		}
	}
	o.candidates = keep
	sortDetections(out)

	// Trim the buffer to the oldest live candidate (or the last window).
	// Reclaiming by copy-down — rather than re-slicing the dead prefix away,
	// which marches the slice window through its backing array until append
	// reallocates — keeps the stream on its construction-time buffer
	// forever: the live span is at most window points and the dead prefix is
	// trimmed once it reaches min(stride, window), so the length stays under
	// the preallocated 2·(window+1) capacity while each point is moved at
	// most once per stride of progress.
	oldest := o.oldestLive(o.pos)
	trimAt := o.stride
	if trimAt > o.window {
		trimAt = o.window
	}
	if oldest-o.bufStart >= trimAt {
		o.trimTo(oldest)
	}
	return out
}

// oldestLive returns the stream index of the oldest sample any live
// candidate (or the trailing window) can still need.
func (o *Online) oldestLive(pos int) int {
	oldest := pos - o.window
	for _, c := range o.candidates {
		if c.start < oldest {
			oldest = c.start
		}
	}
	return oldest
}

// trimTo copies the buffer down so it starts at stream index oldest.
func (o *Online) trimTo(oldest int) {
	if oldest <= o.bufStart {
		return
	}
	n := copy(o.buf, o.buf[oldest-o.bufStart:])
	o.buf = o.buf[:n]
	o.bufStart = oldest
}

// sortDetections orders by (DecisionAt, Start) — the pointwise emission
// order. Batches rarely hold more than a couple of detections, so an
// in-place insertion sort beats sort.Slice's closure allocation.
func sortDetections(ds []Detection) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && (ds[j].DecisionAt < ds[j-1].DecisionAt ||
			(ds[j].DecisionAt == ds[j-1].DecisionAt && ds[j].Start < ds[j-1].Start)); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// PushAll consumes a batch of samples and returns all detections. It is
// PushBatch; the name survives for the hub and test callers that predate
// batching.
func (o *Online) PushAll(stream []float64) []Detection {
	return o.PushBatch(stream)
}
