package stream

import (
	"reflect"
	"testing"

	"etsc/internal/etsc"
	"etsc/internal/synth"
	"etsc/internal/ts"
)

func monitorFixture(t *testing.T) (etsc.EarlyClassifier, []float64) {
	t.Helper()
	cfg := synth.DefaultGunPointConfig()
	cfg.PerClassSize = 15
	d, err := synth.GunPoint(synth.NewRand(21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := d.Split(synth.NewRand(22), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A stream with real windows embedded in noise, so some candidates fire
	// and most do not.
	rng := synth.NewRand(23)
	var stream ts.Series
	for i := 0; i < 4; i++ {
		for j := 0; j < 160; j++ {
			stream = append(stream, rng.NormFloat64()*0.3)
		}
		stream = append(stream, test.Instances[i%test.Len()].Series...)
	}
	return c, stream
}

// TestMonitorParallelByteIdentical is the stream layer's determinism
// contract: Run output must be byte-identical for every worker count,
// including the serial pool.
func TestMonitorParallelByteIdentical(t *testing.T) {
	c, stream := monitorFixture(t)
	base := &Monitor{Classifier: c, Stride: 8, Step: 8, Suppress: 75, Parallelism: 1}
	want, err := base.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no detections; the determinism check would be vacuous")
	}
	for _, workers := range []int{0, 2, 3, 16} {
		m := &Monitor{Classifier: c, Stride: 8, Step: 8, Suppress: 75, Parallelism: workers}
		got, err := m.Run(stream)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Parallelism=%d: detections diverge from serial run\n got: %+v\nwant: %+v", workers, got, want)
		}
	}
}

// TestMonitorMatchesUnsuppressedOnlineAcrossWorkers cross-checks the
// parallel batch monitor against the strictly serial point-at-a-time
// Online monitor (they are documented to agree without suppression).
func TestMonitorMatchesUnsuppressedOnlineAcrossWorkers(t *testing.T) {
	c, stream := monitorFixture(t)
	on, err := NewOnline(c, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The batch monitor only opens candidates whose full window fits the
	// stream; drop online detections on trailing partial windows.
	var want []Detection
	for _, d := range on.PushAll(stream) {
		if d.Start+c.FullLength() <= len(stream) {
			want = append(want, d)
		}
	}
	m := &Monitor{Classifier: c, Stride: 8, Step: 8, Parallelism: 0}
	got, err := m.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("monitor found %d detections, online found %d", len(got), len(want))
	}
	// Online emits in decision order; the batch monitor in candidate order.
	byStart := map[int]Detection{}
	for _, d := range want {
		byStart[d.Start] = d
	}
	for _, d := range got {
		if byStart[d.Start] != d {
			t.Fatalf("detection at start %d: batch %+v != online %+v", d.Start, d, byStart[d.Start])
		}
	}
}

// TestMonitorRejectsNegativeConfig covers the validation the monitor used
// to skip: negative strides/steps/suppression silently fell back to
// defaults before, now they are configuration errors.
func TestMonitorRejectsNegativeConfig(t *testing.T) {
	c, stream := monitorFixture(t)
	cases := []struct {
		name string
		m    Monitor
	}{
		{"negative stride", Monitor{Classifier: c, Stride: -1}},
		{"negative step", Monitor{Classifier: c, Step: -4}},
		{"negative suppress", Monitor{Classifier: c, Suppress: -10}},
		{"negative parallelism", Monitor{Classifier: c, Parallelism: -2}},
	}
	for _, tc := range cases {
		if _, err := tc.m.Run(stream); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Zeroes still mean "default"/"off".
	m := Monitor{Classifier: c}
	if _, err := m.Run(stream); err != nil {
		t.Errorf("zero-value config rejected: %v", err)
	}
}

// TestMonitorParallelWithFallbackClassifier runs the pool over a classifier
// without a native incremental session, exercising the engine's buffering
// adapter under concurrency.
func TestMonitorParallelWithFallbackClassifier(t *testing.T) {
	cfg := synth.DefaultGunPointConfig()
	cfg.PerClassSize = 10
	d, err := synth.GunPoint(synth.NewRand(31), cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := d.Split(synth.NewRand(32), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := etsc.NewECDIRE(train, etsc.DefaultECDIREConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := synth.NewRand(33)
	stream := make([]float64, 1200)
	for i := range stream {
		stream[i] = rng.NormFloat64()
	}
	serial := &Monitor{Classifier: c, Stride: 16, Step: 16, Parallelism: 1}
	want, err := serial.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	parallel := &Monitor{Classifier: c, Stride: 16, Step: 16, Parallelism: 4}
	got, err := parallel.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback classifier diverges across worker counts:\n got %+v\nwant %+v", got, want)
	}
}
