package stream

// Suppressor is the streaming form of Monitor's same-label debouncing: a
// detection is kept unless an earlier *kept* detection with the same label
// fired within Radius points of it. Fed detections in nondecreasing
// DecisionAt order (the order Online emits them), it accepts exactly the
// detections Monitor's post-hoc suppression accepts, which is what lets
// the hub suppress incrementally yet stay byte-identical to the batch
// path. A Radius <= 0 keeps everything.
type Suppressor struct {
	Radius int
	lastAt map[int]int
}

// NewSuppressor builds a suppressor with the given radius.
func NewSuppressor(radius int) *Suppressor {
	return &Suppressor{Radius: radius, lastAt: map[int]int{}}
}

// Keep reports whether d survives suppression, updating internal state
// when it does.
func (s *Suppressor) Keep(d Detection) bool {
	if s.Radius <= 0 {
		return true
	}
	if s.lastAt == nil {
		s.lastAt = map[int]int{}
	}
	if at, ok := s.lastAt[d.Label]; ok && d.DecisionAt-at < s.Radius {
		return false
	}
	s.lastAt[d.Label] = d.DecisionAt
	return true
}

// Filter applies Keep to a DecisionAt-ordered slice, returning the kept
// detections.
func (s *Suppressor) Filter(dets []Detection) []Detection {
	var out []Detection
	for _, d := range dets {
		if s.Keep(d) {
			out = append(out, d)
		}
	}
	return out
}
