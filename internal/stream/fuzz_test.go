package stream

import (
	"encoding/binary"
	"math"
	"testing"

	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/synth"
)

func fuzzTrainSet(tb testing.TB) *dataset.Dataset {
	tb.Helper()
	rng := synth.NewRand(5)
	var ins []dataset.Instance
	for i := 0; i < 6; i++ {
		s := make([]float64, 20)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		ins = append(ins, dataset.Instance{Label: i%2 + 1, Series: s})
	}
	d, err := dataset.New("fuzz-train", ins)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// FuzzOnlinePush feeds arbitrary float values — NaN, ±Inf, subnormals,
// whatever the bytes decode to — through Online in arbitrary batch splits
// and asserts the monitor never panics, its position tracks exactly the
// points consumed, and every detection it emits is well-formed.
func FuzzOnlinePush(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(4), uint8(4))
	nan := make([]byte, 24)
	binary.LittleEndian.PutUint64(nan[0:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nan[8:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(nan[16:], math.Float64bits(math.Inf(-1)))
	f.Add(nan, uint8(1), uint8(2))
	f.Add(make([]byte, 200), uint8(7), uint8(3))

	train := fuzzTrainSet(f)
	classifiers := []etsc.EarlyClassifier{}
	if c, err := etsc.NewFixedPrefix(train, 10, true); err == nil {
		classifiers = append(classifiers, c)
	}
	if c, err := etsc.NewProbThreshold(train, 0.8, 4); err == nil {
		classifiers = append(classifiers, c)
	}
	if len(classifiers) == 0 {
		f.Fatal("no classifiers built")
	}

	f.Fuzz(func(t *testing.T, data []byte, strideB, stepB uint8) {
		stride := int(strideB)%7 + 1
		step := int(stepB)%7 + 1
		clf := classifiers[int(strideB+stepB)%len(classifiers)]
		o, err := NewOnline(clf, stride, step)
		if err != nil {
			t.Fatal(err)
		}
		supp := NewSuppressor(int(stepB) % 16)
		total := 0
		for len(data) > 0 {
			n := int(data[0])%16 + 1
			data = data[1:]
			var batch []float64
			for i := 0; i < n && len(data) >= 8; i++ {
				batch = append(batch, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
				data = data[8:]
			}
			if len(batch) == 0 {
				break
			}
			prevAt := -1
			for _, d := range o.PushAll(batch) {
				if d.Start < 0 || d.DecisionAt < d.Start {
					t.Fatalf("malformed detection %+v", d)
				}
				if d.DecisionAt < prevAt {
					t.Fatalf("detections out of order: %d after %d", d.DecisionAt, prevAt)
				}
				prevAt = d.DecisionAt
				if !(d.Earliness > 0 && d.Earliness <= 1) {
					t.Fatalf("earliness %v out of (0,1]", d.Earliness)
				}
				supp.Keep(d) // must not panic on any input either
			}
			total += len(batch)
			if o.Pos() != total {
				t.Fatalf("position %d after %d points", o.Pos(), total)
			}
			if o.ActiveCandidates() < 0 || o.ActiveCandidates() > clf.FullLength()/stride+1 {
				t.Fatalf("implausible candidate count %d", o.ActiveCandidates())
			}
		}
	})
}
