package stream

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"etsc/internal/etsc"
)

// pushPointwise drives o one sample at a time — the reference transcript
// PushBatch is pinned against.
func pushPointwise(o *Online, stream []float64) []Detection {
	var out []Detection
	for _, v := range stream {
		out = append(out, o.Push(v)...)
	}
	return out
}

func sameDetections(t *testing.T, ctx string, got, want []Detection) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d detections != %d\n%+v\n!=\n%+v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s detection %d: %+v != %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestOnlinePushBatchMatchesPointwise pins the candidate-major batched
// decode byte-identical to point-at-a-time Push: same detections, same
// order, same final monitor state — across classifiers, stride/step
// shapes, and batch sizes from single points to several windows at once.
func TestOnlinePushBatchMatchesPointwise(t *testing.T) {
	train := fuzzTrainSet(t)
	fixed, err := etsc.NewFixedPrefix(train, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := etsc.NewProbThreshold(train, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	stream := make([]float64, 700)
	for i := range stream {
		stream[i] = rng.NormFloat64()
	}
	for _, clf := range []etsc.EarlyClassifier{fixed, prob} {
		for _, ss := range [][2]int{{1, 1}, {4, 4}, {3, 5}, {25, 2}, {7, 20}} {
			for _, batch := range []int{1, 2, 5, 16, 21, 64, 200} {
				a, err := NewOnline(clf, ss[0], ss[1])
				if err != nil {
					t.Fatal(err)
				}
				b, err := NewOnline(clf, ss[0], ss[1])
				if err != nil {
					t.Fatal(err)
				}
				want := pushPointwise(a, stream)
				var got []Detection
				for off := 0; off < len(stream); off += batch {
					end := off + batch
					if end > len(stream) {
						end = len(stream)
					}
					got = append(got, b.PushBatch(stream[off:end])...)
				}
				ctx := clf.Name()
				sameDetections(t, ctx, got, want)
				if a.Pos() != b.Pos() || a.ActiveCandidates() != b.ActiveCandidates() {
					t.Fatalf("%s stride=%d step=%d batch=%d: state diverged: pos %d/%d candidates %d/%d",
						ctx, ss[0], ss[1], batch, a.Pos(), b.Pos(), a.ActiveCandidates(), b.ActiveCandidates())
				}
			}
		}
	}
}

// TestOnlinePushBatchWholeStream pushes the entire stream as one batch —
// many windows long, exercising the internal segmentation — and pins it to
// the pointwise transcript.
func TestOnlinePushBatchWholeStream(t *testing.T) {
	train := fuzzTrainSet(t)
	prob, err := etsc.NewProbThreshold(train, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	stream := make([]float64, 2000)
	for i := range stream {
		stream[i] = rng.NormFloat64()
	}
	a, _ := NewOnline(prob, 4, 4)
	b, _ := NewOnline(prob, 4, 4)
	sameDetections(t, "whole-stream", b.PushBatch(stream), pushPointwise(a, stream))
}

// FuzzOnlinePushBatch drives arbitrary values through arbitrary batch
// splits and asserts the batched transcript equals the pointwise one,
// detection for detection.
func FuzzOnlinePushBatch(f *testing.F) {
	f.Add(make([]byte, 160), uint8(4), uint8(4))
	nan := make([]byte, 48)
	binary.LittleEndian.PutUint64(nan[0:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nan[8:], math.Float64bits(math.Inf(1)))
	f.Add(nan, uint8(1), uint8(2))
	f.Add(make([]byte, 400), uint8(31), uint8(3))

	train := fuzzTrainSet(f)
	classifiers := []etsc.EarlyClassifier{}
	if c, err := etsc.NewFixedPrefix(train, 10, true); err == nil {
		classifiers = append(classifiers, c)
	}
	if c, err := etsc.NewProbThreshold(train, 0.8, 4); err == nil {
		classifiers = append(classifiers, c)
	}
	if len(classifiers) == 0 {
		f.Fatal("no classifiers built")
	}

	f.Fuzz(func(t *testing.T, data []byte, strideB, stepB uint8) {
		stride := int(strideB)%33 + 1
		step := int(stepB)%7 + 1
		clf := classifiers[int(strideB+stepB)%len(classifiers)]
		a, err := NewOnline(clf, stride, step)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewOnline(clf, stride, step)
		if err != nil {
			t.Fatal(err)
		}
		for len(data) > 0 {
			n := int(data[0])%40 + 1
			data = data[1:]
			var batch []float64
			for i := 0; i < n && len(data) >= 8; i++ {
				batch = append(batch, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
				data = data[8:]
			}
			if len(batch) == 0 {
				break
			}
			want := pushPointwise(a, batch)
			got := b.PushBatch(batch)
			if len(got) != len(want) {
				t.Fatalf("%d detections != %d", len(got), len(want))
			}
			for i := range want {
				gi, wi := got[i], want[i]
				// Compare field-wise with bit-equality on the float so a
				// NaN-valued Earliness can't produce a vacuous mismatch.
				if gi.Start != wi.Start || gi.DecisionAt != wi.DecisionAt || gi.Label != wi.Label ||
					math.Float64bits(gi.Earliness) != math.Float64bits(wi.Earliness) {
					t.Fatalf("detection %d: %+v != %+v", i, gi, wi)
				}
			}
			if a.Pos() != b.Pos() || a.ActiveCandidates() != b.ActiveCandidates() {
				t.Fatalf("state diverged: pos %d/%d candidates %d/%d",
					a.Pos(), b.Pos(), a.ActiveCandidates(), b.ActiveCandidates())
			}
		}
	})
}
