package stream

import (
	"math"
	"testing"

	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/synth"
	"etsc/internal/ts"
)

func TestMatchScoring(t *testing.T) {
	truth := []GroundTruth{
		{Label: 1, Start: 100, End: 150},
		{Label: 2, Start: 300, End: 350},
		{Label: 1, Start: 500, End: 550},
	}
	dets := []Detection{
		{Start: 95, DecisionAt: 120, Label: 1},  // TP on event 1
		{Start: 140, DecisionAt: 160, Label: 1}, // duplicate near event 1 (within tolerance): not FP
		{Start: 300, DecisionAt: 320, Label: 1}, // wrong label inside event 2: FP
		{Start: 700, DecisionAt: 720, Label: 2}, // nowhere near anything: FP
	}
	tally := Match(dets, truth, 20)
	if tally.TP != 1 {
		t.Errorf("TP = %d, want 1", tally.TP)
	}
	if tally.FP != 2 {
		t.Errorf("FP = %d, want 2", tally.FP)
	}
	if tally.FN != 2 {
		t.Errorf("FN = %d, want 2 (events 2 and 3 unclaimed)", tally.FN)
	}
	if len(tally.LeadTimes) != 1 || tally.LeadTimes[0] != 30 {
		t.Errorf("lead times %v, want [30]", tally.LeadTimes)
	}
}

func TestMatchEachEventClaimedOnce(t *testing.T) {
	truth := []GroundTruth{{Label: 1, Start: 0, End: 100}}
	dets := []Detection{
		{DecisionAt: 10, Label: 1},
		{DecisionAt: 20, Label: 1},
		{DecisionAt: 30, Label: 1},
	}
	tally := Match(dets, truth, 0)
	if tally.TP != 1 || tally.FP != 0 {
		t.Errorf("TP=%d FP=%d; duplicates on one event should not count as FPs", tally.TP, tally.FP)
	}
}

func TestTallyRatios(t *testing.T) {
	tl := Tally{TP: 2, FP: 10, FN: 1}
	if got := tl.Precision(); math.Abs(got-2.0/12.0) > 1e-12 {
		t.Errorf("precision %v", got)
	}
	if got := tl.Recall(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("recall %v", got)
	}
	if got := tl.FPPerTP(); got != 5 {
		t.Errorf("FP per TP %v", got)
	}
	empty := Tally{}
	if empty.Precision() != 1 || empty.Recall() != 1 || empty.FPPerTP() != 0 {
		t.Error("empty tally conventions")
	}
	silent := Tally{FP: 3}
	if !math.IsInf(silent.FPPerTP(), 1) {
		t.Error("FP without TP should be +Inf")
	}
}

func TestMonitorErrors(t *testing.T) {
	m := &Monitor{}
	if _, err := m.Run(make([]float64, 100)); err == nil {
		t.Error("nil classifier should error")
	}
	train, err := synth.WordDataset(synth.NewRand(1), []string{"cat", "dog"}, 5, 44, synth.DefaultWordConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := etsc.NewProbThreshold(train, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	m = &Monitor{Classifier: c}
	if _, err := m.Run(make([]float64, 10)); err == nil {
		t.Error("stream shorter than window should error")
	}
}

func TestSuppress(t *testing.T) {
	dets := []Detection{
		{DecisionAt: 10, Label: 1},
		{DecisionAt: 12, Label: 1}, // suppressed
		{DecisionAt: 13, Label: 2}, // different label: kept
		{DecisionAt: 60, Label: 1}, // far enough: kept
	}
	out := suppress(dets, 20)
	if len(out) != 3 {
		t.Errorf("got %d detections after suppression, want 3: %+v", len(out), out)
	}
}

func TestNNVerifier(t *testing.T) {
	// Training class 1: sine bumps; class 2: ramps.
	var instances []dataset.Instance
	rng := synth.NewRand(2)
	n := 30
	for i := 0; i < 8; i++ {
		bump := make(ts.Series, n)
		ramp := make(ts.Series, n)
		for j := 0; j < n; j++ {
			x := float64(j) / float64(n)
			bump[j] = math.Sin(math.Pi*x) + rng.NormFloat64()*0.05
			ramp[j] = x + rng.NormFloat64()*0.05
		}
		instances = append(instances,
			dataset.Instance{Label: 1, Series: ts.ZNorm(bump)},
			dataset.Instance{Label: 2, Series: ts.ZNorm(ramp)})
	}
	train, err := dataset.New("verify", instances)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewNNVerifier(train, 0.95, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Threshold(1) <= 0 {
		t.Errorf("threshold %v", v.Threshold(1))
	}
	// A fresh bump should verify as class 1, not class 2.
	fresh := make(ts.Series, n)
	for j := 0; j < n; j++ {
		fresh[j] = math.Sin(math.Pi*float64(j)/float64(n))*2 + 5
	}
	if !v.Verify(fresh, 1) {
		t.Error("genuine bump rejected")
	}
	if v.Verify(fresh, 2) {
		t.Error("bump accepted as ramp")
	}
	// Noise should be rejected for both classes.
	noise := make(ts.Series, n)
	for j := range noise {
		noise[j] = rng.NormFloat64()
	}
	if v.Verify(noise, 1) && v.Verify(noise, 2) {
		t.Error("noise accepted by both classes")
	}
	// Unknown label rejected.
	if v.Verify(fresh, 9) {
		t.Error("unknown label accepted")
	}
}

func TestNNVerifierErrors(t *testing.T) {
	if _, err := NewNNVerifier(nil, 0.95, 1); err == nil {
		t.Error("nil train should error")
	}
	d, err := dataset.New("tiny", []dataset.Instance{
		{Label: 1, Series: ts.Series{1, 2}},
		{Label: 1, Series: ts.Series{2, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNNVerifier(d, 2, 1); err == nil {
		t.Error("quantile > 1 should error")
	}
}

func TestVerifyMarksOutOfStreamAsRecanted(t *testing.T) {
	d, err := dataset.New("tiny", []dataset.Instance{
		{Label: 1, Series: ts.Series{0, 1, 0, 1}},
		{Label: 1, Series: ts.Series{1, 0, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewNNVerifier(d, 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	dets := []Detection{{Start: 8, DecisionAt: 9, Label: 1}}
	Verify(dets, make([]float64, 10), 4, v)
	if !dets[0].Recanted {
		t.Error("window extending past the stream must be recanted")
	}
}
