package stream

import (
	"errors"
	"fmt"

	"etsc/internal/ts"
)

// TemplateDetection is one match of a template detector.
type TemplateDetection struct {
	Start int     // window start in the stream
	End   int     // window end (exclusive) — also the alarm time
	Dist  float64 // z-normalized Euclidean distance to the template
}

// TemplateMonitor is the detector of the paper's Fig. 8: any subsequence
// within Threshold of the (z-normalized) Template is reported. A truncated
// template with a re-calibrated threshold is the paper's entire "early
// classification" — which, it argues, is "just classification with an
// awareness ... that the sensitivity and specificity of a time series
// template will change as you add or delete points".
type TemplateMonitor struct {
	Template  ts.Series
	Threshold float64
	// Exclusion is the non-overlap radius between reported matches
	// (<= 0: half template length).
	Exclusion int
}

// NewTemplateMonitor validates and builds a monitor.
func NewTemplateMonitor(template []float64, threshold float64, exclusion int) (*TemplateMonitor, error) {
	if len(template) < 2 {
		return nil, errors.New("stream: template too short")
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("stream: threshold must be positive, got %v", threshold)
	}
	return &TemplateMonitor{
		Template:  append(ts.Series(nil), template...),
		Threshold: threshold,
		Exclusion: exclusion,
	}, nil
}

// Run returns every (non-overlapping) match in the stream, by position.
func (m *TemplateMonitor) Run(stream []float64) ([]TemplateDetection, error) {
	matches, err := ts.MatchesBelow(m.Template, stream, m.Threshold, m.Exclusion)
	if err != nil {
		return nil, err
	}
	out := make([]TemplateDetection, len(matches))
	for i, match := range matches {
		out[i] = TemplateDetection{
			Start: match.Start,
			End:   match.Start + len(m.Template),
			Dist:  match.Dist,
		}
	}
	return out, nil
}

// TopK returns the k nearest non-overlapping neighbours of the template in
// the stream regardless of threshold — the "500 nearest neighbors" analysis
// of Fig. 8.
func (m *TemplateMonitor) TopK(stream []float64, k int) ([]TemplateDetection, error) {
	matches, err := ts.TopMatches(m.Template, stream, k, m.Exclusion)
	if err != nil {
		return nil, err
	}
	out := make([]TemplateDetection, len(matches))
	for i, match := range matches {
		out[i] = TemplateDetection{
			Start: match.Start,
			End:   match.Start + len(m.Template),
			Dist:  match.Dist,
		}
	}
	return out, nil
}

// ScoreTemplateDetections counts how many detections land inside intervals
// of the wanted behaviour (tolerance-padded), returning hits and total.
func ScoreTemplateDetections(dets []TemplateDetection, truth []GroundTruth, label, tolerance int) (hits, total int) {
	for _, d := range dets {
		total++
		for _, tr := range truth {
			if tr.Label != label {
				continue
			}
			if d.Start >= tr.Start-tolerance && d.Start < tr.End+tolerance {
				hits++
				break
			}
		}
	}
	return hits, total
}
