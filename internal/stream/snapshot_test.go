package stream

import (
	"encoding/binary"
	"math"
	"testing"

	"etsc/internal/etsc"
	"etsc/internal/snap"
	"etsc/internal/synth"
)

// TestOnlineSnapshotEquivalence is the monitor-layer half of the durable
// state proof: snapshot mid-stream, restore into a fresh monitor, and the
// remaining points produce exactly the detections of the monitor that
// never stopped — for both engines and several split points, including
// splits inside open candidate windows.
func TestOnlineSnapshotEquivalence(t *testing.T) {
	train := fuzzTrainSet(t)
	prob, err := etsc.NewProbThreshold(train, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := synth.NewRand(99)
	series := make([]float64, 400)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	for _, engine := range []etsc.EngineMode{etsc.Pruned, etsc.Eager} {
		for _, split := range []int{0, 1, 13, 50, 399} {
			straight, err := NewOnlineEngine(prob, 3, 2, engine)
			if err != nil {
				t.Fatal(err)
			}
			interrupted, err := NewOnlineEngine(prob, 3, 2, engine)
			if err != nil {
				t.Fatal(err)
			}
			want := straight.PushBatch(series[:split])
			got := interrupted.PushBatch(series[:split])

			var w snap.Writer
			if err := interrupted.SnapshotTo(&w); err != nil {
				t.Fatalf("engine %d split %d: snapshot: %v", engine, split, err)
			}
			restored, err := NewOnlineEngine(prob, 3, 2, engine)
			if err != nil {
				t.Fatal(err)
			}
			r := snap.NewReader(w.Bytes())
			if err := restored.RestoreFrom(r); err != nil {
				t.Fatalf("engine %d split %d: restore: %v", engine, split, err)
			}
			if err := r.Done(); err != nil {
				t.Fatalf("engine %d split %d: trailing bytes: %v", engine, split, err)
			}
			if restored.Pos() != split || restored.ActiveCandidates() != interrupted.ActiveCandidates() {
				t.Fatalf("engine %d split %d: restored pos %d candidates %d, want %d / %d",
					engine, split, restored.Pos(), restored.ActiveCandidates(),
					split, interrupted.ActiveCandidates())
			}

			want = append(want, straight.PushBatch(series[split:])...)
			got = append(got, restored.PushBatch(series[split:])...)
			if len(want) != len(got) {
				t.Fatalf("engine %d split %d: %d vs %d detections", engine, split, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("engine %d split %d: detection %d = %+v, want %+v",
						engine, split, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOnlineRestoreRejectsCorruption drives truncations and field-level
// corruption of a real monitor snapshot through RestoreFrom: every
// malformed input fails with an error, never a panic, and a restore into a
// used monitor is refused.
func TestOnlineRestoreRejectsCorruption(t *testing.T) {
	train := fuzzTrainSet(t)
	prob, err := etsc.NewProbThreshold(train, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := synth.NewRand(3)
	series := make([]float64, 60)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	o, err := NewOnline(prob, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	o.PushBatch(series)
	var w snap.Writer
	if err := o.SnapshotTo(&w); err != nil {
		t.Fatal(err)
	}
	good := w.Bytes()

	fresh := func() *Online {
		m, err := NewOnline(prob, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// A restore into a monitor that has consumed points is refused.
	used := fresh()
	used.Push(1)
	if err := used.RestoreFrom(snap.NewReader(good)); err == nil {
		t.Error("restore into a used monitor succeeded")
	}

	// Every strict prefix must fail (truncation sweep), and every single
	// flipped byte must either fail or restore into a *working* monitor —
	// CRC protection lives a layer up, but nothing here may panic.
	for cut := 0; cut < len(good); cut++ {
		m := fresh()
		r := snap.NewReader(good[:cut])
		if err := m.RestoreFrom(r); err == nil && r.Done() == nil {
			t.Errorf("restore of %d/%d-byte prefix reported clean", cut, len(good))
		}
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x5A
		m := fresh()
		r := snap.NewReader(bad)
		if err := m.RestoreFrom(r); err == nil && r.Done() == nil {
			m.PushBatch(series[:10]) // must not panic if accepted
		}
	}
}

// TestSuppressorSnapshotRoundTrip pins the suppressor's state carry: a
// restored suppressor makes exactly the keep/drop decisions of the one
// that never stopped.
func TestSuppressorSnapshotRoundTrip(t *testing.T) {
	s := NewSuppressor(10)
	dets := []Detection{
		{DecisionAt: 5, Label: 1}, {DecisionAt: 9, Label: 1}, {DecisionAt: 12, Label: 2},
	}
	for _, d := range dets {
		s.Keep(d)
	}
	var w snap.Writer
	s.SnapshotTo(&w)
	s2 := NewSuppressor(10)
	r := snap.NewReader(w.Bytes())
	if err := s2.RestoreFrom(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	later := []Detection{
		{DecisionAt: 13, Label: 1}, {DecisionAt: 16, Label: 1}, {DecisionAt: 13, Label: 2}, {DecisionAt: 30, Label: 2},
	}
	for _, d := range later {
		if s.Keep(d) != s2.Keep(d) {
			t.Fatalf("suppressor diverged on %+v", d)
		}
	}
}

// FuzzOnlineRestoreEquivalence splits a fuzzed stream at an arbitrary
// point, snapshots and restores the monitor there, and requires the
// stitched transcript to equal the straight-through run — the fuzz form of
// TestOnlineSnapshotEquivalence, over arbitrary floats (NaN, ±Inf,
// subnormals) and arbitrary stride/step/split geometry.
func FuzzOnlineRestoreEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(4), uint8(4), uint8(8))
	nan := make([]byte, 24)
	binary.LittleEndian.PutUint64(nan[0:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nan[8:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(nan[16:], math.Float64bits(math.Inf(-1)))
	f.Add(nan, uint8(1), uint8(2), uint8(1))
	f.Add(make([]byte, 300), uint8(7), uint8(3), uint8(100))

	train := fuzzTrainSet(f)
	classifiers := []etsc.EarlyClassifier{}
	if c, err := etsc.NewFixedPrefix(train, 10, true); err == nil {
		classifiers = append(classifiers, c)
	}
	if c, err := etsc.NewProbThreshold(train, 0.8, 4); err == nil {
		classifiers = append(classifiers, c)
	}
	if len(classifiers) == 0 {
		f.Fatal("no classifiers built")
	}

	f.Fuzz(func(t *testing.T, data []byte, strideB, stepB, splitB uint8) {
		stride := int(strideB)%7 + 1
		step := int(stepB)%7 + 1
		clf := classifiers[int(strideB+stepB)%len(classifiers)]
		var points []float64
		for len(data) >= 8 {
			points = append(points, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		split := 0
		if len(points) > 0 {
			split = int(splitB) % (len(points) + 1)
		}

		straight, err := NewOnline(clf, stride, step)
		if err != nil {
			t.Fatal(err)
		}
		interrupted, err := NewOnline(clf, stride, step)
		if err != nil {
			t.Fatal(err)
		}
		want := straight.PushBatch(points)

		got := interrupted.PushBatch(points[:split])
		var w snap.Writer
		if err := interrupted.SnapshotTo(&w); err != nil {
			t.Fatalf("snapshot at %d: %v", split, err)
		}
		restored, err := NewOnline(clf, stride, step)
		if err != nil {
			t.Fatal(err)
		}
		r := snap.NewReader(w.Bytes())
		if err := restored.RestoreFrom(r); err != nil {
			t.Fatalf("restore at %d: %v", split, err)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("trailing snapshot bytes at %d: %v", split, err)
		}
		got = append(got, restored.PushBatch(points[split:])...)

		if len(want) != len(got) {
			t.Fatalf("split %d: %d vs %d detections", split, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			same := w.Start == g.Start && w.DecisionAt == g.DecisionAt && w.Label == g.Label &&
				(w.Earliness == g.Earliness || (math.IsNaN(w.Earliness) && math.IsNaN(g.Earliness)))
			if !same {
				t.Fatalf("split %d: detection %d = %+v, want %+v", split, i, g, w)
			}
		}
	})
}
