// Package stream implements the deployment setting the paper argues every
// ETSC evaluation ignores: a continuous, unsegmented, un-normalized stream
// in which target patterns are rare and everything else is "spurious data
// that might be thousands of times more frequent than target data".
//
// It provides a candidate-window monitor that runs any etsc.EarlyClassifier
// over a stream, ground-truth matching that scores detections as true/false
// positives, a full-window verifier that models the "recant" step (the
// retraction the paper notes defeats the purpose of early classification),
// and a template monitor for threshold-based detectors (Fig. 8).
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/ts"
)

// Detection is one alarm raised by a monitor.
type Detection struct {
	Start      int     // candidate window start in the stream
	DecisionAt int     // stream index at which the alarm fired (inclusive end)
	Label      int     // predicted class
	Earliness  float64 // fraction of the window seen when the alarm fired
	Recanted   bool    // set by Verify: the full window failed verification
}

// Monitor slides candidate windows over a stream and runs an early
// classifier on each. A new candidate is opened every Stride points; each
// candidate is fed prefixes every Step points until the classifier commits
// or the window completes without commitment.
type Monitor struct {
	Classifier etsc.EarlyClassifier
	Stride     int // candidate spacing (default: 4)
	Step       int // prefix growth per classifier call (default: 4)
	// Suppress, when > 0, drops detections whose decision point is within
	// Suppress points of an earlier accepted detection with the same
	// label — debouncing, so one event does not fire dozens of alarms.
	Suppress int
}

// Run scans the whole stream and returns detections in decision order.
func (m *Monitor) Run(stream []float64) ([]Detection, error) {
	if m.Classifier == nil {
		return nil, errors.New("stream: Monitor needs a classifier")
	}
	stride := m.Stride
	if stride < 1 {
		stride = 4
	}
	step := m.Step
	if step < 1 {
		step = 4
	}
	L := m.Classifier.FullLength()
	if L > len(stream) {
		return nil, fmt.Errorf("stream: stream length %d shorter than window %d", len(stream), L)
	}

	var dets []Detection
	for start := 0; start+L <= len(stream); start += stride {
		window := stream[start : start+L]
		var sess etsc.Session
		if sc, ok := m.Classifier.(etsc.SessionClassifier); ok {
			sess = sc.NewSession()
		}
		for l := step; l <= L; l += step {
			var d etsc.Decision
			if sess != nil {
				d = sess.Step(window[:l])
			} else {
				d = m.Classifier.ClassifyPrefix(window[:l])
			}
			if d.Ready {
				dets = append(dets, Detection{
					Start:      start,
					DecisionAt: start + l - 1,
					Label:      d.Label,
					Earliness:  float64(l) / float64(L),
				})
				break
			}
		}
	}
	if m.Suppress > 0 {
		dets = suppress(dets, m.Suppress)
	}
	return dets, nil
}

// suppress keeps the earliest detection in each same-label burst.
func suppress(dets []Detection, radius int) []Detection {
	sort.Slice(dets, func(a, b int) bool { return dets[a].DecisionAt < dets[b].DecisionAt })
	lastAt := map[int]int{}
	var out []Detection
	for _, d := range dets {
		if at, ok := lastAt[d.Label]; ok && d.DecisionAt-at < radius {
			continue
		}
		lastAt[d.Label] = d.DecisionAt
		out = append(out, d)
	}
	return out
}

// GroundTruth is one annotated true event in the stream.
type GroundTruth struct {
	Label      int
	Start, End int // half-open
}

// Tally scores detections against ground truth.
type Tally struct {
	TP, FP, FN int
	Recanted   int // detections whose full window failed verification
	Detections []Detection
	// LeadTime is, for each true positive, End-of-event minus decision
	// point: how much earlier than the event's end the alarm fired.
	LeadTimes []int
}

// Precision returns TP/(TP+FP); 1 if no detections.
func (t Tally) Precision() float64 {
	if t.TP+t.FP == 0 {
		return 1
	}
	return float64(t.TP) / float64(t.TP+t.FP)
}

// Recall returns TP/(TP+FN); 1 if no true events.
func (t Tally) Recall() float64 {
	if t.TP+t.FN == 0 {
		return 1
	}
	return float64(t.TP) / float64(t.TP+t.FN)
}

// FPPerTP returns the false-positive-per-true-positive ratio (+Inf when
// there are false positives but no true positives).
func (t Tally) FPPerTP() float64 {
	if t.TP == 0 {
		if t.FP == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(t.FP) / float64(t.TP)
}

// Match scores detections against truth. A detection is a true positive if
// its decision point falls inside a true event of the same label extended
// by tolerance points on both sides; each true event absorbs at most one
// true positive (extra hits on the same event are neither TPs nor FPs).
// Unclaimed true events count as false negatives.
func Match(dets []Detection, truth []GroundTruth, tolerance int) Tally {
	claimed := make([]bool, len(truth))
	used := make([]bool, len(dets))
	tally := Tally{Detections: dets}
	// Greedy in decision order: earliest detection claims the event.
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dets[order[a]].DecisionAt < dets[order[b]].DecisionAt })
	for _, di := range order {
		d := dets[di]
		for ti, tr := range truth {
			if claimed[ti] || tr.Label != d.Label {
				continue
			}
			if d.DecisionAt >= tr.Start-tolerance && d.DecisionAt < tr.End+tolerance {
				claimed[ti] = true
				used[di] = true
				tally.TP++
				tally.LeadTimes = append(tally.LeadTimes, tr.End-d.DecisionAt)
				break
			}
		}
	}
	for di, d := range dets {
		if used[di] {
			continue
		}
		// A duplicate hit on an already-claimed event is not an FP.
		dup := false
		for ti, tr := range truth {
			if claimed[ti] && tr.Label == d.Label &&
				d.DecisionAt >= tr.Start-tolerance && d.DecisionAt < tr.End+tolerance {
				dup = true
				break
			}
		}
		if !dup {
			tally.FP++
		}
	}
	for _, c := range claimed {
		if !c {
			tally.FN++
		}
	}
	for _, d := range dets {
		if d.Recanted {
			tally.Recanted++
		}
	}
	return tally
}

// Verifier decides, once a detection's full window is available, whether
// the early classification survives — the "recant" check. A rejected
// detection is exactly the situation the paper describes: an alarm that
// "must later be recanted", after the action has already been taken.
type Verifier interface {
	// Verify reports whether the completed window still supports label.
	Verify(window []float64, label int) bool
}

// NNVerifier accepts a window iff its z-normalized distance to the nearest
// training exemplar of the detected class is within a calibrated envelope
// (a quantile of leave-one-out nearest-neighbour distances per class).
type NNVerifier struct {
	train     *dataset.Dataset
	threshold map[int]float64
}

// NewNNVerifier calibrates per-class acceptance thresholds at the given
// quantile (e.g. 0.95) of within-class leave-one-out NN distances, scaled
// by slack (>= 1 loosens the envelope).
func NewNNVerifier(train *dataset.Dataset, quantile, slack float64) (*NNVerifier, error) {
	if train == nil || train.Len() < 2 {
		return nil, errors.New("stream: NNVerifier needs at least 2 training instances")
	}
	if quantile <= 0 || quantile > 1 {
		return nil, fmt.Errorf("stream: NNVerifier quantile %v out of (0,1]", quantile)
	}
	if slack < 1 {
		slack = 1
	}
	v := &NNVerifier{train: train, threshold: map[int]float64{}}
	byClass := train.ByClass()
	for label, idx := range byClass {
		if len(idx) < 2 {
			v.threshold[label] = math.Inf(1)
			continue
		}
		var dists []float64
		for _, i := range idx {
			best := math.Inf(1)
			zi := ts.ZNorm(train.Instances[i].Series)
			for _, j := range idx {
				if i == j {
					continue
				}
				d := ts.Euclidean(zi, ts.ZNorm(train.Instances[j].Series))
				if d < best {
					best = d
				}
			}
			dists = append(dists, best)
		}
		sort.Float64s(dists)
		q := dists[int(float64(len(dists)-1)*quantile)]
		v.threshold[label] = q * slack
	}
	return v, nil
}

// Threshold returns the calibrated acceptance distance for label.
func (v *NNVerifier) Threshold(label int) float64 { return v.threshold[label] }

// Verify implements Verifier.
func (v *NNVerifier) Verify(window []float64, label int) bool {
	thr, ok := v.threshold[label]
	if !ok {
		return false
	}
	zw := ts.ZNorm(window)
	for _, in := range v.train.Instances {
		if in.Label != label {
			continue
		}
		if len(in.Series) != len(zw) {
			continue
		}
		if ts.Euclidean(zw, ts.ZNorm(in.Series)) <= thr {
			return true
		}
	}
	return false
}

// Verify applies the verifier to every detection's completed window,
// marking Recanted in place. Detections whose full window extends past the
// stream end are marked recanted (the pattern never completed).
func Verify(dets []Detection, stream []float64, windowLen int, v Verifier) {
	for i := range dets {
		end := dets[i].Start + windowLen
		if end > len(stream) {
			dets[i].Recanted = true
			continue
		}
		dets[i].Recanted = !v.Verify(stream[dets[i].Start:end], dets[i].Label)
	}
}
