// Package stream implements the deployment setting the paper argues every
// ETSC evaluation ignores: a continuous, unsegmented, un-normalized stream
// in which target patterns are rare and everything else is "spurious data
// that might be thousands of times more frequent than target data".
//
// It provides a candidate-window monitor that runs any etsc.EarlyClassifier
// over a stream, ground-truth matching that scores detections as true/false
// positives, a full-window verifier that models the "recant" step (the
// retraction the paper notes defeats the purpose of early classification),
// and a template monitor for threshold-based detectors (Fig. 8).
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/par"
	"etsc/internal/ts"
)

// Detection is one alarm raised by a monitor.
type Detection struct {
	Start      int     // candidate window start in the stream
	DecisionAt int     // stream index at which the alarm fired (inclusive end)
	Label      int     // predicted class
	Earliness  float64 // fraction of the window seen when the alarm fired
	Recanted   bool    // set by Verify: the full window failed verification
}

// Monitor slides candidate windows over a stream and runs an early
// classifier on each. A new candidate is opened every Stride points; each
// candidate's session is fed newly arrived points every Step points until
// the classifier commits or the window completes without commitment.
//
// Candidate windows are independent, so Run fans them across a worker pool
// of Parallelism goroutines. Results are assembled in candidate order and
// suppression runs after assembly, so the output is byte-identical for
// every worker count (including 1) — parallelism changes wall-clock time
// only.
type Monitor struct {
	Classifier etsc.EarlyClassifier
	Stride     int // candidate spacing (0 defaults to 4; negative is an error)
	Step       int // prefix growth per classifier call (0 defaults to 4; negative is an error)
	// Suppress, when > 0, drops detections whose decision point is within
	// Suppress points of an earlier accepted detection with the same
	// label — debouncing, so one event does not fire dozens of alarms.
	// Negative values are an error.
	Suppress int
	// Parallelism bounds the candidate-window worker pool: 0 means one
	// worker per CPU, 1 runs serially; negative is an error.
	Parallelism int
	// Engine selects the inference engine for candidate sessions (the zero
	// value is the default pruned lazy-frontier engine). Detections are
	// identical for every mode; like Parallelism it trades CPU only.
	Engine etsc.EngineMode
}

// validate rejects nonsense configurations instead of silently "defaulting"
// them: a negative stride or step would loop forever or skip the stream,
// and a negative suppression radius has no meaning.
func (m *Monitor) validate() error {
	if m.Classifier == nil {
		return errors.New("stream: Monitor needs a classifier")
	}
	if m.Stride < 0 {
		return fmt.Errorf("stream: Monitor.Stride must be >= 0 (0 = default), got %d", m.Stride)
	}
	if m.Step < 0 {
		return fmt.Errorf("stream: Monitor.Step must be >= 0 (0 = default), got %d", m.Step)
	}
	if m.Suppress < 0 {
		return fmt.Errorf("stream: Monitor.Suppress must be >= 0 (0 = off), got %d", m.Suppress)
	}
	if m.Parallelism < 0 {
		return fmt.Errorf("stream: Monitor.Parallelism must be >= 0 (0 = NumCPU), got %d", m.Parallelism)
	}
	if m.Engine != etsc.Pruned && m.Engine != etsc.Eager {
		return fmt.Errorf("stream: Monitor.Engine must be Pruned or Eager, got %d", int(m.Engine))
	}
	return nil
}

// Run scans the whole stream and returns detections in decision order.
func (m *Monitor) Run(stream []float64) ([]Detection, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	stride := m.Stride
	if stride == 0 {
		stride = 4
	}
	step := m.Step
	if step == 0 {
		step = 4
	}
	L := m.Classifier.FullLength()
	if L > len(stream) {
		return nil, fmt.Errorf("stream: stream length %d shorter than window %d", len(stream), L)
	}

	nCand := (len(stream)-L)/stride + 1
	results := make([]Detection, nCand)
	fired := make([]bool, nCand)
	par.Do(nCand, m.Parallelism, func(ci int) {
		start := ci * stride
		window := stream[start : start+L]
		sess := etsc.OpenSessionMode(m.Classifier, m.Engine)
		prev := 0
		for l := step; l <= L; l += step {
			d := sess.Extend(window[prev:l])
			prev = l
			if d.Ready {
				results[ci] = Detection{
					Start:      start,
					DecisionAt: start + l - 1,
					Label:      d.Label,
					Earliness:  float64(l) / float64(L),
				}
				fired[ci] = true
				return
			}
		}
	})
	var dets []Detection
	for ci := range results {
		if fired[ci] {
			dets = append(dets, results[ci])
		}
	}
	if m.Suppress > 0 {
		dets = suppress(dets, m.Suppress)
	}
	return dets, nil
}

// suppress keeps the earliest detection in each same-label burst. The sort
// must be stable: same-DecisionAt ties stay in candidate-start order, the
// order Online emits them, so the streaming Suppressor accepts exactly the
// same detections.
func suppress(dets []Detection, radius int) []Detection {
	sort.SliceStable(dets, func(a, b int) bool { return dets[a].DecisionAt < dets[b].DecisionAt })
	return NewSuppressor(radius).Filter(dets)
}

// GroundTruth is one annotated true event in the stream.
type GroundTruth struct {
	Label      int
	Start, End int // half-open
}

// Tally scores detections against ground truth.
type Tally struct {
	TP, FP, FN int
	Recanted   int // detections whose full window failed verification
	Detections []Detection
	// LeadTime is, for each true positive, End-of-event minus decision
	// point: how much earlier than the event's end the alarm fired.
	LeadTimes []int
}

// Precision returns TP/(TP+FP); 1 if no detections.
func (t Tally) Precision() float64 {
	if t.TP+t.FP == 0 {
		return 1
	}
	return float64(t.TP) / float64(t.TP+t.FP)
}

// Recall returns TP/(TP+FN); 1 if no true events.
func (t Tally) Recall() float64 {
	if t.TP+t.FN == 0 {
		return 1
	}
	return float64(t.TP) / float64(t.TP+t.FN)
}

// FPPerTP returns the false-positive-per-true-positive ratio (+Inf when
// there are false positives but no true positives).
func (t Tally) FPPerTP() float64 {
	if t.TP == 0 {
		if t.FP == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(t.FP) / float64(t.TP)
}

// Match scores detections against truth. A detection is a true positive if
// its decision point falls inside a true event of the same label extended
// by tolerance points on both sides; each true event absorbs at most one
// true positive (extra hits on the same event are neither TPs nor FPs).
// Unclaimed true events count as false negatives.
func Match(dets []Detection, truth []GroundTruth, tolerance int) Tally {
	claimed := make([]bool, len(truth))
	used := make([]bool, len(dets))
	tally := Tally{Detections: dets}
	// Greedy in decision order: earliest detection claims the event.
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dets[order[a]].DecisionAt < dets[order[b]].DecisionAt })
	for _, di := range order {
		d := dets[di]
		for ti, tr := range truth {
			if claimed[ti] || tr.Label != d.Label {
				continue
			}
			if d.DecisionAt >= tr.Start-tolerance && d.DecisionAt < tr.End+tolerance {
				claimed[ti] = true
				used[di] = true
				tally.TP++
				tally.LeadTimes = append(tally.LeadTimes, tr.End-d.DecisionAt)
				break
			}
		}
	}
	for di, d := range dets {
		if used[di] {
			continue
		}
		// A duplicate hit on an already-claimed event is not an FP.
		dup := false
		for ti, tr := range truth {
			if claimed[ti] && tr.Label == d.Label &&
				d.DecisionAt >= tr.Start-tolerance && d.DecisionAt < tr.End+tolerance {
				dup = true
				break
			}
		}
		if !dup {
			tally.FP++
		}
	}
	for _, c := range claimed {
		if !c {
			tally.FN++
		}
	}
	for _, d := range dets {
		if d.Recanted {
			tally.Recanted++
		}
	}
	return tally
}

// Verifier decides, once a detection's full window is available, whether
// the early classification survives — the "recant" check. A rejected
// detection is exactly the situation the paper describes: an alarm that
// "must later be recanted", after the action has already been taken.
type Verifier interface {
	// Verify reports whether the completed window still supports label.
	Verify(window []float64, label int) bool
}

// NNVerifier accepts a window iff its z-normalized distance to the nearest
// training exemplar of the detected class is within a calibrated envelope
// (a quantile of leave-one-out nearest-neighbour distances per class).
type NNVerifier struct {
	train     *dataset.Dataset
	threshold map[int]float64
}

// NewNNVerifier calibrates per-class acceptance thresholds at the given
// quantile (e.g. 0.95) of within-class leave-one-out NN distances, scaled
// by slack (>= 1 loosens the envelope).
func NewNNVerifier(train *dataset.Dataset, quantile, slack float64) (*NNVerifier, error) {
	if train == nil || train.Len() < 2 {
		return nil, errors.New("stream: NNVerifier needs at least 2 training instances")
	}
	if quantile <= 0 || quantile > 1 {
		return nil, fmt.Errorf("stream: NNVerifier quantile %v out of (0,1]", quantile)
	}
	if slack < 1 {
		slack = 1
	}
	v := &NNVerifier{train: train, threshold: map[int]float64{}}
	byClass := train.ByClass()
	for label, idx := range byClass {
		if len(idx) < 2 {
			v.threshold[label] = math.Inf(1)
			continue
		}
		var dists []float64
		for _, i := range idx {
			best := math.Inf(1)
			zi := ts.ZNorm(train.Instances[i].Series)
			for _, j := range idx {
				if i == j {
					continue
				}
				d := ts.Euclidean(zi, ts.ZNorm(train.Instances[j].Series))
				if d < best {
					best = d
				}
			}
			dists = append(dists, best)
		}
		sort.Float64s(dists)
		q := dists[int(float64(len(dists)-1)*quantile)]
		v.threshold[label] = q * slack
	}
	return v, nil
}

// Threshold returns the calibrated acceptance distance for label.
func (v *NNVerifier) Threshold(label int) float64 { return v.threshold[label] }

// Verify implements Verifier.
func (v *NNVerifier) Verify(window []float64, label int) bool {
	thr, ok := v.threshold[label]
	if !ok {
		return false
	}
	zw := ts.ZNorm(window)
	for _, in := range v.train.Instances {
		if in.Label != label {
			continue
		}
		if len(in.Series) != len(zw) {
			continue
		}
		if ts.Euclidean(zw, ts.ZNorm(in.Series)) <= thr {
			return true
		}
	}
	return false
}

// Verify applies the verifier to every detection's completed window,
// marking Recanted in place. Detections whose full window extends past the
// stream end are marked recanted (the pattern never completed).
func Verify(dets []Detection, stream []float64, windowLen int, v Verifier) {
	for i := range dets {
		end := dets[i].Start + windowLen
		if end > len(stream) {
			dets[i].Recanted = true
			continue
		}
		dets[i].Recanted = !v.Verify(stream[dets[i].Start:end], dets[i].Label)
	}
}
