package stream

import (
	"fmt"
	"sort"

	"etsc/internal/etsc"
	"etsc/internal/snap"
)

// Online snapshot/restore: the monitor's live scratch — stream position,
// sample buffer, and every open candidate window with its session state —
// serializes through a snap.Writer and rebuilds into a freshly constructed
// monitor over the same classifier and configuration. The classifier
// itself is not serialized; the owning layer records the model spec and
// re-trains (or re-attaches) it before calling RestoreFrom.

// Classifier returns the classifier this monitor drives.
func (o *Online) Classifier() etsc.EarlyClassifier { return o.classifier }

// Stride returns the configured candidate-window stride.
func (o *Online) Stride() int { return o.stride }

// Step returns the configured decision-opportunity step.
func (o *Online) Step() int { return o.step }

// Engine returns the engine mode candidate sessions are opened with.
func (o *Online) Engine() etsc.EngineMode { return o.engine }

// SnapshotTo writes the monitor's live state: position, buffer, and every
// open candidate (window start, decision cursor, and classifier session
// scratch).
func (o *Online) SnapshotTo(w *snap.Writer) error {
	w.Int(o.pos)
	w.Int(o.bufStart)
	w.Floats(o.buf)
	w.Int(len(o.candidates))
	for _, c := range o.candidates {
		w.Int(c.start)
		w.Int(c.nextLen)
		w.Int(c.seen)
		if err := etsc.SnapshotSessionState(c.sess, w); err != nil {
			return fmt.Errorf("stream: candidate at %d: %w", c.start, err)
		}
	}
	return nil
}

// RestoreFrom loads state written by SnapshotTo into a freshly constructed
// monitor (NewOnlineEngine with the same classifier, stride, step, and
// engine mode) that has not consumed a point. Structurally invalid state —
// a buffer that cannot belong to this configuration, candidate cursors
// outside their windows — fails with an error wrapping snap.ErrCorrupt and
// never panics; the monitor is not usable after a failed restore.
func (o *Online) RestoreFrom(r *snap.Reader) error {
	if o.pos != 0 || len(o.candidates) != 0 {
		return fmt.Errorf("%w: restore into a monitor that has already consumed points", snap.ErrCorrupt)
	}
	pos := r.Int()
	bufStart := r.Int()
	buf := r.Floats()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if pos < 0 || bufStart < 0 || bufStart > pos {
		return fmt.Errorf("%w: position %d / buffer start %d", snap.ErrCorrupt, pos, bufStart)
	}
	if bufStart+len(buf) != pos {
		return fmt.Errorf("%w: buffer [%d, %d) does not end at position %d", snap.ErrCorrupt, bufStart, bufStart+len(buf), pos)
	}
	if len(buf) > cap(o.buf) {
		return fmt.Errorf("%w: buffer of %d points exceeds this configuration's %d capacity", snap.ErrCorrupt, len(buf), cap(o.buf))
	}
	if n < 0 || n > len(buf)/o.stride+2 {
		return fmt.Errorf("%w: %d candidates over a %d-point buffer at stride %d", snap.ErrCorrupt, n, len(buf), o.stride)
	}
	o.pos = pos
	o.bufStart = bufStart
	o.buf = append(o.buf[:0], buf...)
	prevStart := -1
	for i := 0; i < n; i++ {
		start, nextLen, seen := r.Int(), r.Int(), r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if start < bufStart || start > pos || start%o.stride != 0 {
			return fmt.Errorf("%w: candidate %d start %d outside buffer [%d, %d] or off stride %d",
				snap.ErrCorrupt, i, start, bufStart, pos, o.stride)
		}
		if start <= prevStart {
			return fmt.Errorf("%w: candidate %d start %d not after previous %d", snap.ErrCorrupt, i, start, prevStart)
		}
		prevStart = start
		if seen < 0 || seen > pos-start || seen > o.window {
			return fmt.Errorf("%w: candidate %d has seen %d of a %d-point window with %d available",
				snap.ErrCorrupt, i, seen, o.window, pos-start)
		}
		if nextLen < o.step || nextLen < seen || nextLen > o.window+o.step || nextLen%o.step != 0 {
			return fmt.Errorf("%w: candidate %d decision cursor %d (seen %d, step %d)",
				snap.ErrCorrupt, i, nextLen, seen, o.step)
		}
		sess := etsc.OpenSessionMode(o.classifier, o.engine)
		if err := etsc.RestoreSessionState(sess, r); err != nil {
			return fmt.Errorf("stream: candidate %d: %w", i, err)
		}
		o.candidates = append(o.candidates, &onlineCandidate{
			start: start, nextLen: nextLen, seen: seen, sess: sess,
		})
	}
	return r.Err()
}

// SnapshotTo writes the suppressor's debounce state: for each label, the
// DecisionAt of the last kept detection, in sorted label order so the
// snapshot bytes are deterministic.
func (s *Suppressor) SnapshotTo(w *snap.Writer) {
	labels := make([]int, 0, len(s.lastAt))
	for lab := range s.lastAt {
		labels = append(labels, lab)
	}
	sort.Ints(labels)
	w.Int(len(labels))
	for _, lab := range labels {
		w.Int(lab)
		w.Int(s.lastAt[lab])
	}
}

// RestoreFrom loads state written by SnapshotTo. The radius is
// configuration, not state; it must already be set.
func (s *Suppressor) RestoreFrom(r *snap.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > r.Remaining() {
		return fmt.Errorf("%w: %d suppressor entries", snap.ErrCorrupt, n)
	}
	if s.lastAt == nil {
		s.lastAt = make(map[int]int, n)
	}
	for i := 0; i < n; i++ {
		lab, at := r.Int(), r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		s.lastAt[lab] = at
	}
	return nil
}
