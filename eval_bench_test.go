// Benchmarks of the inference hot path — the streaming-prefix evaluation
// loop the deployment argument lives on. BenchmarkEvalAll pits the pruned
// lazy-frontier engine against the eager reference engine for every native
// classifier on the demo datasets; BenchmarkHubPush measures the hub's
// ingest path end to end with allocation reporting. CI runs both at
// -benchtime=1x and appends the output to BENCH_eval.json (with host cpus
// and go version), building the eval-path performance trajectory alongside
// BENCH_train.json's training trajectory.
//
//	go test -bench 'BenchmarkEvalAll|BenchmarkHubPush' -benchmem .
package etsc_test

import (
	"fmt"
	"testing"

	"etsc/internal/etsc"
	"etsc/internal/hub"
)

// BenchmarkEvalAll evaluates each native classifier over the GunPoint demo
// test split through the session engine, point-at-a-time (step 1) — the
// paper's streaming-prefix loop at its real granularity, where every
// arriving sample is a decision opportunity. The bank-backed classifiers
// (ECTS, ProbThreshold) run under both engine modes; the ECTS pruned/eager
// delta is the frontier's measured win (a global-NN consumer with a strong
// cutoff prunes hard), while ProbThreshold documents the frontier's
// honest cost on per-class minima over few, similar classes — its
// per-class cutoffs are weak, which is exactly what the trajectory in
// BENCH_eval.json is there to track. The remaining classifiers have a
// single session path (their Extend work is snapshot- or shapelet-driven,
// not bank-driven) and appear once.
func BenchmarkEvalAll(b *testing.B) {
	train, test := benchSplit(b)
	builds := []struct {
		name  string
		modal bool // distinct pruned/eager sessions
		make  func() (etsc.EarlyClassifier, error)
	}{
		{"ECTS", true, func() (etsc.EarlyClassifier, error) { return etsc.NewECTS(train, false, 0) }},
		{"ProbThreshold", true, func() (etsc.EarlyClassifier, error) { return etsc.NewProbThreshold(train, 0.8, 10) }},
		{"TEASER", false, func() (etsc.EarlyClassifier, error) { return etsc.NewTEASER(train, etsc.DefaultTEASERConfig()) }},
		{"EDSC-CHE", false, func() (etsc.EarlyClassifier, error) { return etsc.NewEDSC(train, etsc.DefaultEDSCConfig(etsc.CHE)) }},
		{"RelClass", false, func() (etsc.EarlyClassifier, error) {
			return etsc.NewRelClass(train, etsc.DefaultRelClassConfig(false))
		}},
		{"FixedPrefix", false, func() (etsc.EarlyClassifier, error) { return etsc.NewFixedPrefix(train, train.SeriesLen()/3, true) }},
	}
	for _, bc := range builds {
		c, err := bc.make()
		if err != nil {
			b.Fatal(err)
		}
		modes := []etsc.EngineMode{etsc.Eager, etsc.Pruned}
		if !bc.modal {
			modes = modes[1:]
		}
		for _, mode := range modes {
			name := bc.name
			if bc.modal {
				name = fmt.Sprintf("%s/%s", bc.name, mode)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := etsc.EvaluateParallelMode(c, test, 1, 1, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHubPush measures hub ingest throughput on the demo workload
// with allocation reporting: 4 streams round-robined over the three kinds,
// batch-64 pushes through a single-worker pool — the shape where the Push
// path's recycled batch buffers and the sessions' zero-allocation Extends
// show up directly in allocs/op.
func BenchmarkHubPush(b *testing.B) {
	kinds, err := hub.DemoKinds(17)
	if err != nil {
		b.Fatal(err)
	}
	const nStreams = 4
	const perStream = 4_000
	gens, err := hub.DemoStreams(kinds, 17, nStreams, perStream)
	if err != nil {
		b.Fatal(err)
	}
	totalPoints := 0
	for _, g := range gens {
		totalPoints += len(g.Data)
	}
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := hub.New(hub.Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range gens {
			if err := h.Attach(g.ID, g.Config); err != nil {
				b.Fatal(err)
			}
		}
		for _, g := range gens {
			for off := 0; off < len(g.Data); off += batch {
				end := off + batch
				if end > len(g.Data) {
					end = len(g.Data)
				}
				if err := h.Push(g.ID, g.Data[off:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := h.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(totalPoints * 8))
}
