// Benchmarks of the inference hot path — the streaming-prefix evaluation
// loop the deployment argument lives on. BenchmarkEvalAll pits the pruned
// lazy-frontier engine against the eager reference engine for every native
// classifier on the demo datasets; BenchmarkHubPush measures the hub's
// steady-state ingest path with allocation reporting; BenchmarkHubPushSharded
// sweeps the sharded hub across shard × stream-count cells. CI runs all
// three at -benchtime=1x and appends the output to BENCH_eval.json (with
// host cpus and go version), building the eval-path performance trajectory
// alongside BENCH_train.json's training trajectory.
//
//	go test -bench 'BenchmarkEvalAll|BenchmarkHubPush' -benchmem .
package etsc_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/hub"
	"etsc/internal/ts"
)

// BenchmarkEvalAll evaluates each native classifier over the GunPoint demo
// test split through the session engine, point-at-a-time (step 1) — the
// paper's streaming-prefix loop at its real granularity, where every
// arriving sample is a decision opportunity. The bank-backed classifiers
// (ECTS, ProbThreshold) run under both engine modes; the ECTS pruned/eager
// delta is the frontier's measured win (a global-NN consumer with a strong
// cutoff prunes hard), while ProbThreshold's pruned row tracks the
// frontier-crossover fallback — per-class minima over few, similar classes
// prune too weakly to pay for the frontier, so small banks ride the
// blocked eager kernel (DESIGN.md §Layer 11). RelClass appears twice: the
// default precomputed suffix-table kernel and the eager Monte Carlo
// reference it replaced. The remaining classifiers have a single session
// path (their Extend work is snapshot- or shapelet-driven, not
// bank-driven) and appear once.
func BenchmarkEvalAll(b *testing.B) {
	train, test := benchSplit(b)
	builds := []struct {
		name  string
		modal bool // distinct pruned/eager sessions
		make  func() (etsc.EarlyClassifier, error)
	}{
		{"ECTS", true, func() (etsc.EarlyClassifier, error) { return etsc.NewECTS(train, false, 0) }},
		{"ProbThreshold", true, func() (etsc.EarlyClassifier, error) { return etsc.NewProbThreshold(train, 0.8, 10) }},
		{"TEASER", false, func() (etsc.EarlyClassifier, error) { return etsc.NewTEASER(train, etsc.DefaultTEASERConfig()) }},
		{"EDSC-CHE", false, func() (etsc.EarlyClassifier, error) { return etsc.NewEDSC(train, etsc.DefaultEDSCConfig(etsc.CHE)) }},
		{"RelClass", false, func() (etsc.EarlyClassifier, error) {
			return etsc.NewRelClass(train, etsc.DefaultRelClassConfig(false))
		}},
		// The eager Monte Carlo reference kernel, kept in the trajectory so
		// the suffix-table win stays measured (RelClass above defaults to
		// the precomputed table; see internal/etsc RelClassMode).
		{"RelClass-eagerMC", false, func() (etsc.EarlyClassifier, error) {
			cfg := etsc.DefaultRelClassConfig(false)
			cfg.Mode = etsc.RelEager
			return etsc.NewRelClass(train, cfg)
		}},
		{"FixedPrefix", false, func() (etsc.EarlyClassifier, error) { return etsc.NewFixedPrefix(train, train.SeriesLen()/3, true) }},
	}
	for _, bc := range builds {
		c, err := bc.make()
		if err != nil {
			b.Fatal(err)
		}
		modes := []etsc.EngineMode{etsc.Eager, etsc.Pruned}
		if !bc.modal {
			modes = modes[1:]
		}
		for _, mode := range modes {
			name := bc.name
			if bc.modal {
				name = fmt.Sprintf("%s/%s", bc.name, mode)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := etsc.EvaluateParallelMode(c, test, 1, 1, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHubPush measures steady-state hub ingest on the demo workload
// with allocation reporting: 4 streams over the three kinds registered
// explicitly up front (the /v1-era shape — POST /v1/streams then pushes),
// batch-64 pushes through a single-worker pool, one op = pushing every
// stream's full series and draining via Flush. Hub construction, stream
// registration, and final Close all sit outside the timer, so allocs/op is
// the ingest path alone — recycled batch buffers plus the sessions'
// zero-allocation Extends. Records in BENCH_eval.json up to 2026-08-07
// measured the older per-op shape (hub construction + lazy demo attach +
// Close inside the loop); the trajectory restarts from that date.
func BenchmarkHubPush(b *testing.B) {
	kinds, err := hub.DemoKinds(17)
	if err != nil {
		b.Fatal(err)
	}
	const nStreams = 4
	const perStream = 4_000
	gens, err := hub.DemoStreams(kinds, 17, nStreams, perStream)
	if err != nil {
		b.Fatal(err)
	}
	totalPoints := 0
	for _, g := range gens {
		totalPoints += len(g.Data)
	}
	const batch = 64
	h, err := hub.New(hub.Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range gens {
		if err := h.Attach(g.ID, g.Config); err != nil {
			b.Fatal(err)
		}
	}
	push := func() {
		for _, g := range gens {
			for off := 0; off < len(g.Data); off += batch {
				end := off + batch
				if end > len(g.Data) {
					end = len(g.Data)
				}
				if err := h.Push(g.ID, g.Data[off:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
		h.Flush()
	}
	// One untimed pass warms the queue freelists and session buffers, so
	// the op measures steady state even at CI's -benchtime=1x.
	push()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push()
	}
	b.StopTimer()
	b.SetBytes(int64(totalPoints * 8))
	if _, err := h.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchQuietConfig builds the deliberately cheap pipeline the sharded
// sweep attaches everywhere: a FixedPrefix detector over two constant
// exemplars, evaluation stride pushed to the exemplar length, so the
// measurement isolates routing, queueing, and lock contention rather than
// classifier CPU.
func benchQuietConfig(b *testing.B, seriesLen int) hub.StreamConfig {
	b.Helper()
	mk := func(level float64) dataset.Instance {
		s := make(ts.Series, seriesLen)
		for i := range s {
			s[i] = level
		}
		return dataset.Instance{Label: int(level) + 2, Series: s}
	}
	d, err := dataset.New("quiet", []dataset.Instance{mk(-1), mk(1)})
	if err != nil {
		b.Fatal(err)
	}
	clf, err := etsc.NewFixedPrefix(d, seriesLen, false)
	if err != nil {
		b.Fatal(err)
	}
	return hub.StreamConfig{Classifier: clf, Stride: seriesLen, Step: 8}
}

// BenchmarkHubPushSharded sweeps the sharded hub across shards {1,4,16} ×
// stream counts {16, 1k, 100k}: GOMAXPROCS pusher goroutines partitioned
// over the streams, batch-64 pushes against quiet pipelines, one op = a
// fixed ~1M-point budget split evenly across the cell's streams (floor one
// batch per stream). Hub construction and the attach storm sit outside the
// timer. On a multi-core host the multi-shard cells scale with the shard
// count — the shards share nothing on the push path; a single-core runner
// pins GOMAXPROCS=1 and measures routing overhead instead (see the cpus
// field of each BENCH_eval.json record).
func BenchmarkHubPushSharded(b *testing.B) {
	const (
		seriesLen   = 512
		batch       = 64
		totalBudget = 1 << 20
	)
	sc := benchQuietConfig(b, seriesLen)
	pushers := runtime.GOMAXPROCS(0)
	for _, nShards := range []int{1, 4, 16} {
		for _, nStreams := range []int{16, 1024, 100_000} {
			b.Run(fmt.Sprintf("shards=%d/streams=%d", nShards, nStreams), func(b *testing.B) {
				sh, err := hub.NewSharded(hub.ShardedConfig{
					Shards: nShards,
					Config: hub.Config{Workers: pushers, QueueDepth: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]string, nStreams)
				for i := range ids {
					ids[i] = fmt.Sprintf("s-%06d", i)
					if err := sh.Attach(ids[i], sc); err != nil {
						b.Fatal(err)
					}
				}
				perStream := totalBudget / nStreams
				if perStream < batch {
					perStream = batch
				}
				data := make([]float64, perStream)
				for i := range data {
					data[i] = float64(i%7) * 0.25
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for p := 0; p < pushers; p++ {
						wg.Add(1)
						go func(p int) {
							defer wg.Done()
							for s := p; s < nStreams; s += pushers {
								for off := 0; off < perStream; off += batch {
									end := off + batch
									if end > perStream {
										end = perStream
									}
									if err := sh.Push(ids[s], data[off:end]); err != nil {
										b.Error(err)
										return
									}
								}
							}
						}(p)
					}
					wg.Wait()
					sh.Flush()
				}
				b.StopTimer()
				b.SetBytes(int64(nStreams) * int64(perStream) * 8)
				if _, err := sh.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
