// BenchmarkTrainAll measures training the paper's full 8-algorithm suite on
// one training set, direct (every New* recomputing its own distances,
// serially) versus through a shared etsc.TrainContext (one memoized
// prefix-distance matrix + prefix cache, parallel trainers) at several
// worker counts. The trained models are identical (the train-equivalence
// battery pins that); this bench is the wall-clock side of the contract —
// the acceptance target is >= 2× at 4 workers. CI runs it at -benchtime=1x
// and appends the output to BENCH_train.json so training-path regressions
// are visible per PR.
package etsc_test

import (
	"fmt"
	"testing"

	"etsc/internal/dataset"
	"etsc/internal/etsc"
)

// trainSuiteDirect trains all 8 algorithms through the legacy constructors.
func trainSuiteDirect(b *testing.B, train *dataset.Dataset) {
	b.Helper()
	steps := []func() error{
		func() error { _, err := etsc.NewECTS(train, false, 0); return err },
		func() error { _, err := etsc.NewEDSC(train, etsc.DefaultEDSCConfig(etsc.CHE)); return err },
		func() error { _, err := etsc.NewRelClass(train, etsc.DefaultRelClassConfig(false)); return err },
		func() error { _, err := etsc.NewECDIRE(train, etsc.DefaultECDIREConfig()); return err },
		func() error { _, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig()); return err },
		func() error { _, err := etsc.NewProbThreshold(train, 0.8, 10); return err },
		func() error { _, err := etsc.NewFixedPrefix(train, train.SeriesLen()/3, true); return err },
		func() error { _, err := etsc.NewCostAware(train, etsc.DefaultCostAwareConfig()); return err },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
}

// trainSuiteShared trains the same 8 algorithms through one fresh shared
// context (context construction and matrix materialization are part of the
// measured cost — that is the deployment shape).
func trainSuiteShared(b *testing.B, train *dataset.Dataset, workers int) {
	b.Helper()
	ctx, err := etsc.NewTrainContext(train, workers)
	if err != nil {
		b.Fatal(err)
	}
	steps := []func() error{
		func() error { _, err := etsc.NewECTSWith(ctx, false, 0); return err },
		func() error { _, err := etsc.NewEDSCWith(ctx, etsc.DefaultEDSCConfig(etsc.CHE)); return err },
		func() error { _, err := etsc.NewRelClassWith(ctx, etsc.DefaultRelClassConfig(false)); return err },
		func() error { _, err := etsc.NewECDIREWith(ctx, etsc.DefaultECDIREConfig()); return err },
		func() error { _, err := etsc.NewTEASERWith(ctx, etsc.DefaultTEASERConfig()); return err },
		func() error { _, err := etsc.NewProbThresholdWith(ctx, 0.8, 10); return err },
		func() error { _, err := etsc.NewFixedPrefixWith(ctx, train.SeriesLen()/3, true); return err },
		func() error { _, err := etsc.NewCostAwareWith(ctx, etsc.DefaultCostAwareConfig()); return err },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainAll(b *testing.B) {
	train, _ := benchSplit(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trainSuiteDirect(b, train)
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shared/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trainSuiteShared(b, train, workers)
			}
		})
	}
}
