module etsc

go 1.22
