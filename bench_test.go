// Benchmarks regenerating every table and figure of the paper (quick-size
// workloads; run cmd/etsc-repro for the full-size versions), plus the
// ablation benches DESIGN.md calls out and micro-benchmarks of the
// distance kernels everything is built on.
//
//	go test -bench=. -benchmem
package etsc_test

import (
	"fmt"
	"testing"

	"etsc/internal/classify"
	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/experiments"
	"etsc/internal/hub"
	"etsc/internal/stream"
	"etsc/internal/synth"
	"etsc/internal/ts"
)

// --- one bench per paper artifact -----------------------------------------

func BenchmarkFig1CatDogDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2StreamingSentence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3EarlyTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Homophones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Denormalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Extended(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1Extended(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ECGWander(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Dustbathing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9PrefixSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixBStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAppendixB(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md) ------------------------------------------

func benchSplit(b *testing.B) (train, test *dataset.Dataset) {
	b.Helper()
	cfg := synth.DefaultGunPointConfig()
	cfg.PerClassSize = 40
	d, err := synth.GunPoint(synth.NewRand(42), cfg)
	if err != nil {
		b.Fatal(err)
	}
	train, test, err = d.Split(synth.NewRand(7), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return train, test
}

// BenchmarkAblationECTSSupport compares strict vs relaxed ECTS training and
// evaluation at min-support 0 (the paper's Table 1 setting, where the two
// variants score identically).
func BenchmarkAblationECTSSupport(b *testing.B) {
	train, test := benchSplit(b)
	for _, relaxed := range []bool{false, true} {
		name := "strict"
		if relaxed {
			name = "relaxed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := etsc.NewECTS(train, relaxed, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := etsc.Evaluate(c, test, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTEASERNorm compares TEASER with (published, footnote-2)
// and without prefix z-normalization, on denormalized test data. The raw
// variant is both slower to decide and far less accurate.
func BenchmarkAblationTEASERNorm(b *testing.B) {
	train, test := benchSplit(b)
	denorm := test.Denormalize(synth.NewRand(99), 1.0)
	for _, znorm := range []bool{true, false} {
		name := "znorm-prefix"
		if !znorm {
			name = "raw-prefix"
		}
		b.Run(name, func(b *testing.B) {
			cfg := etsc.DefaultTEASERConfig()
			cfg.ZNormPrefix = znorm
			c, err := etsc.NewTEASER(train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			acc := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := etsc.Evaluate(c, denorm, 4)
				if err != nil {
					b.Fatal(err)
				}
				acc = s.Accuracy()
			}
			b.ReportMetric(acc, "denorm-accuracy")
		})
	}
}

// BenchmarkAblationTEASERConsistency sweeps TEASER's consecutive-agreement
// requirement v: larger v trades earliness for fewer premature commits.
func BenchmarkAblationTEASERConsistency(b *testing.B) {
	train, test := benchSplit(b)
	for _, v := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			cfg := etsc.DefaultTEASERConfig()
			cfg.V = v
			c, err := etsc.NewTEASER(train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var acc, earliness float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := etsc.Evaluate(c, test, 4)
				if err != nil {
					b.Fatal(err)
				}
				acc, earliness = s.Accuracy(), s.MeanEarliness()
			}
			b.ReportMetric(acc, "accuracy")
			b.ReportMetric(earliness, "earliness")
		})
	}
}

// BenchmarkAblationDTWBand compares ED against DTW at several band radii on
// the classify substrate.
func BenchmarkAblationDTWBand(b *testing.B) {
	train, test := benchSplit(b)
	dists := []classify.Distance{
		classify.EuclideanDistance{},
		classify.DTWDistance{Radius: 3},
		classify.DTWDistance{Radius: 10},
		classify.DTWDistance{Radius: -1},
	}
	for _, d := range dists {
		b.Run(d.Name(), func(b *testing.B) {
			knn, err := classify.NewKNN(train, 1, d)
			if err != nil {
				b.Fatal(err)
			}
			sub := test.Sample(synth.NewRand(3), 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				knn.Evaluate(sub)
			}
		})
	}
}

// BenchmarkAblationEarlyAbandon measures the early-abandon win in a
// nearest-neighbour scan.
func BenchmarkAblationEarlyAbandon(b *testing.B) {
	train, test := benchSplit(b)
	query := test.Instances[0].Series
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := 1e308
			for _, in := range train.Instances {
				if d := ts.SquaredEuclidean(query, in.Series); d < best {
					best = d
				}
			}
		}
	})
	b.Run("early-abandon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := 1e308
			for _, in := range train.Instances {
				if d, ok := ts.SquaredEuclideanEA(query, in.Series, best); ok && d < best {
					best = d
				}
			}
		}
	})
}

// --- engine benches: incremental vs from-scratch, serial vs parallel --------

// replayFromScratch is the pre-engine evaluation loop: the pure
// ClassifyPrefix path recomputes every training-set distance for every
// prefix length. The incremental path (etsc.RunOne via OpenSession) must
// beat it on the same workload — that delta is the engine's reason to
// exist.
func replayFromScratch(c etsc.EarlyClassifier, series []float64, step int) {
	full := c.FullLength()
	if full > len(series) {
		full = len(series)
	}
	for l := step; l <= full; l += step {
		if d := c.ClassifyPrefix(series[:l]); d.Ready {
			return
		}
	}
	c.ForcedLabel(series[:full])
}

// BenchmarkEngineIncrementalVsPure pits the incremental session path
// against the from-scratch ClassifyPrefix replay over a full test set, for
// the classifiers whose sessions carry running accumulator state.
func BenchmarkEngineIncrementalVsPure(b *testing.B) {
	train, test := benchSplit(b)
	builds := []struct {
		name string
		make func() (etsc.EarlyClassifier, error)
	}{
		{"ECTS", func() (etsc.EarlyClassifier, error) { return etsc.NewECTS(train, false, 0) }},
		{"TEASER", func() (etsc.EarlyClassifier, error) { return etsc.NewTEASER(train, etsc.DefaultTEASERConfig()) }},
		{"ProbThreshold", func() (etsc.EarlyClassifier, error) { return etsc.NewProbThreshold(train, 0.8, 5) }},
	}
	for _, bc := range builds {
		c, err := bc.make()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bc.name+"/from-scratch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, in := range test.Instances {
					replayFromScratch(c, in.Series, 4)
				}
			}
		})
		b.Run(bc.name+"/incremental", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, in := range test.Instances {
					etsc.RunOne(c, in.Series, 4)
				}
			}
		})
	}
}

// BenchmarkMonitorEngine measures the two engine wins on the monitor hot
// path: sessions over from-scratch replay, and candidate fan-out over the
// worker pool. "from-scratch-serial" reproduces the pre-engine monitor
// inner loop; the Run variants use the incremental engine at increasing
// worker counts. All variants produce identical detections.
func BenchmarkMonitorEngine(b *testing.B) {
	train, _ := benchSplit(b)
	c, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	if err != nil {
		b.Fatal(err)
	}
	data := randomSeries(8_000, 5)
	L := c.FullLength()
	b.Run("from-scratch-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for start := 0; start+L <= len(data); start += 8 {
				replayFromScratch(c, data[start:start+L], 8)
			}
		}
		b.SetBytes(int64(len(data) * 8))
	})
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("incremental-workers=%d", workers)
		if workers == 0 {
			name = "incremental-workers=NumCPU"
		}
		mon := &stream.Monitor{Classifier: c, Stride: 8, Step: 8, Suppress: 75, Parallelism: workers}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mon.Run(data); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(data) * 8))
		})
	}
}

// BenchmarkLOOCVParallel measures worker-pool scaling on leave-one-out
// cross-validation under the quadratic-cost DTW distance.
func BenchmarkLOOCVParallel(b *testing.B) {
	train, _ := benchSplit(b)
	dist := classify.DTWDistance{Radius: 10}
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=NumCPU"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				classify.LeaveOneOutParallel(train, dist, workers)
			}
		})
	}
}

// BenchmarkPrefixSweepParallel measures worker-pool scaling on the Fig. 9
// per-prefix evaluation.
func BenchmarkPrefixSweepParallel(b *testing.B) {
	train, test := benchSplit(b)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=NumCPU"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := classify.PrefixSweepParallel(train, test, 20, train.SeriesLen(), 10, true,
					classify.EuclideanDistance{}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- hub benches: multi-stream scaling --------------------------------------

// BenchmarkHubScaling drives the load-generator workload (the three demo
// stream kinds round-robined over 16 streams) through the hub across a
// worker grid. Per-stream output is byte-identical at every worker count
// (the golden test pins that); this bench shows what the workers buy in
// aggregate throughput — the acceptance target is >2× at 8 workers vs 1.
func BenchmarkHubScaling(b *testing.B) {
	kinds, err := hub.DemoKinds(17)
	if err != nil {
		b.Fatal(err)
	}
	const nStreams = 16
	const perStream = 6_000
	gens, err := hub.DemoStreams(kinds, 17, nStreams, perStream)
	if err != nil {
		b.Fatal(err)
	}
	totalPoints, maxLen := 0, 0
	for _, g := range gens {
		totalPoints += len(g.Data)
		if len(g.Data) > maxLen {
			maxLen = len(g.Data)
		}
	}
	const batch = 64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("streams=%d/workers=%d", nStreams, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, err := hub.New(hub.Config{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, g := range gens {
					if err := h.Attach(g.ID, g.Config); err != nil {
						b.Fatal(err)
					}
				}
				// Round-robin pushes so streams genuinely interleave, the
				// way concurrent producers would drive a deployed hub.
				// Generators overshoot perStream; run to the longest stream
				// so every counted point is actually pushed.
				for off := 0; off < maxLen; off += batch {
					for _, g := range gens {
						if off >= len(g.Data) {
							continue
						}
						end := off + batch
						if end > len(g.Data) {
							end = len(g.Data)
						}
						if err := h.Push(g.ID, g.Data[off:end]); err != nil {
							b.Fatal(err)
						}
					}
				}
				if _, err := h.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(totalPoints * 8))
		})
	}
}

// --- micro-benchmarks of the hot kernels ------------------------------------

func randomSeries(n int, seed int64) ts.Series {
	rng := synth.NewRand(seed)
	s := make(ts.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkSquaredEuclidean150(b *testing.B) {
	x := randomSeries(150, 1)
	y := randomSeries(150, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.SquaredEuclidean(x, y)
	}
}

func BenchmarkDTW150Band10(b *testing.B) {
	x := randomSeries(150, 1)
	y := randomSeries(150, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.DTW(x, y, 10)
	}
}

func BenchmarkZNorm150(b *testing.B) {
	x := randomSeries(150, 1)
	dst := make(ts.Series, 150)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.ZNormInto(dst, x)
	}
}

// BenchmarkZNormPrefixDist compares growing-prefix z-normalized distance
// maintained incrementally (O(1) per point) against recomputation from
// scratch at every length (O(l) per point, O(L²) total).
func BenchmarkZNormPrefixDist(b *testing.B) {
	q := randomSeries(150, 1)
	ref := ts.ZNorm(randomSeries(150, 2))
	b.Run("from-scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for l := 1; l <= len(q); l++ {
				ts.SquaredEuclidean(ts.ZNorm(q[:l]), ref[:l])
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var rn ts.RunningNorm
			z := ts.NewZNormPrefixDist(&rn, ref)
			for l := 1; l <= len(q); l++ {
				z.Extend(q[l-1 : l])
				rn.Add(q[l-1])
				z.D2()
			}
		}
	})
}

func BenchmarkDistanceProfile100k(b *testing.B) {
	stream := randomSeries(100_000, 3)
	query := randomSeries(120, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ts.DistanceProfile(query, stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitorThroughput(b *testing.B) {
	train, _ := benchSplit(b)
	c, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	if err != nil {
		b.Fatal(err)
	}
	data := randomSeries(20_000, 5)
	mon := &stream.Monitor{Classifier: c, Stride: 8, Step: 8, Suppress: 75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Run(data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data) * 8))
}
