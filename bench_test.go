// Benchmarks regenerating every table and figure of the paper (quick-size
// workloads; run cmd/etsc-repro for the full-size versions), plus the
// ablation benches DESIGN.md calls out and micro-benchmarks of the
// distance kernels everything is built on.
//
//	go test -bench=. -benchmem
package etsc_test

import (
	"fmt"
	"testing"

	"etsc/internal/classify"
	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/experiments"
	"etsc/internal/stream"
	"etsc/internal/synth"
	"etsc/internal/ts"
)

// --- one bench per paper artifact -----------------------------------------

func BenchmarkFig1CatDogDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2StreamingSentence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3EarlyTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Homophones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Denormalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Extended(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1Extended(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ECGWander(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Dustbathing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9PrefixSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixBStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAppendixB(experiments.QuickConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md) ------------------------------------------

func benchSplit(b *testing.B) (train, test *dataset.Dataset) {
	b.Helper()
	cfg := synth.DefaultGunPointConfig()
	cfg.PerClassSize = 40
	d, err := synth.GunPoint(synth.NewRand(42), cfg)
	if err != nil {
		b.Fatal(err)
	}
	train, test, err = d.Split(synth.NewRand(7), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return train, test
}

// BenchmarkAblationECTSSupport compares strict vs relaxed ECTS training and
// evaluation at min-support 0 (the paper's Table 1 setting, where the two
// variants score identically).
func BenchmarkAblationECTSSupport(b *testing.B) {
	train, test := benchSplit(b)
	for _, relaxed := range []bool{false, true} {
		name := "strict"
		if relaxed {
			name = "relaxed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := etsc.NewECTS(train, relaxed, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := etsc.Evaluate(c, test, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTEASERNorm compares TEASER with (published, footnote-2)
// and without prefix z-normalization, on denormalized test data. The raw
// variant is both slower to decide and far less accurate.
func BenchmarkAblationTEASERNorm(b *testing.B) {
	train, test := benchSplit(b)
	denorm := test.Denormalize(synth.NewRand(99), 1.0)
	for _, znorm := range []bool{true, false} {
		name := "znorm-prefix"
		if !znorm {
			name = "raw-prefix"
		}
		b.Run(name, func(b *testing.B) {
			cfg := etsc.DefaultTEASERConfig()
			cfg.ZNormPrefix = znorm
			c, err := etsc.NewTEASER(train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			acc := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := etsc.Evaluate(c, denorm, 4)
				if err != nil {
					b.Fatal(err)
				}
				acc = s.Accuracy()
			}
			b.ReportMetric(acc, "denorm-accuracy")
		})
	}
}

// BenchmarkAblationTEASERConsistency sweeps TEASER's consecutive-agreement
// requirement v: larger v trades earliness for fewer premature commits.
func BenchmarkAblationTEASERConsistency(b *testing.B) {
	train, test := benchSplit(b)
	for _, v := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			cfg := etsc.DefaultTEASERConfig()
			cfg.V = v
			c, err := etsc.NewTEASER(train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var acc, earliness float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := etsc.Evaluate(c, test, 4)
				if err != nil {
					b.Fatal(err)
				}
				acc, earliness = s.Accuracy(), s.MeanEarliness()
			}
			b.ReportMetric(acc, "accuracy")
			b.ReportMetric(earliness, "earliness")
		})
	}
}

// BenchmarkAblationDTWBand compares ED against DTW at several band radii on
// the classify substrate.
func BenchmarkAblationDTWBand(b *testing.B) {
	train, test := benchSplit(b)
	dists := []classify.Distance{
		classify.EuclideanDistance{},
		classify.DTWDistance{Radius: 3},
		classify.DTWDistance{Radius: 10},
		classify.DTWDistance{Radius: -1},
	}
	for _, d := range dists {
		b.Run(d.Name(), func(b *testing.B) {
			knn, err := classify.NewKNN(train, 1, d)
			if err != nil {
				b.Fatal(err)
			}
			sub := test.Sample(synth.NewRand(3), 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				knn.Evaluate(sub)
			}
		})
	}
}

// BenchmarkAblationEarlyAbandon measures the early-abandon win in a
// nearest-neighbour scan.
func BenchmarkAblationEarlyAbandon(b *testing.B) {
	train, test := benchSplit(b)
	query := test.Instances[0].Series
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := 1e308
			for _, in := range train.Instances {
				if d := ts.SquaredEuclidean(query, in.Series); d < best {
					best = d
				}
			}
		}
	})
	b.Run("early-abandon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := 1e308
			for _, in := range train.Instances {
				if d, ok := ts.SquaredEuclideanEA(query, in.Series, best); ok && d < best {
					best = d
				}
			}
		}
	})
}

// --- micro-benchmarks of the hot kernels ------------------------------------

func randomSeries(n int, seed int64) ts.Series {
	rng := synth.NewRand(seed)
	s := make(ts.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkSquaredEuclidean150(b *testing.B) {
	x := randomSeries(150, 1)
	y := randomSeries(150, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.SquaredEuclidean(x, y)
	}
}

func BenchmarkDTW150Band10(b *testing.B) {
	x := randomSeries(150, 1)
	y := randomSeries(150, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.DTW(x, y, 10)
	}
}

func BenchmarkZNorm150(b *testing.B) {
	x := randomSeries(150, 1)
	dst := make(ts.Series, 150)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.ZNormInto(dst, x)
	}
}

func BenchmarkDistanceProfile100k(b *testing.B) {
	stream := randomSeries(100_000, 3)
	query := randomSeries(120, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ts.DistanceProfile(query, stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitorThroughput(b *testing.B) {
	train, _ := benchSplit(b)
	c, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	if err != nil {
		b.Fatal(err)
	}
	data := randomSeries(20_000, 5)
	mon := &stream.Monitor{Classifier: c, Stride: 8, Step: 8, Suppress: 75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Run(data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data) * 8))
}
