package main

import (
	"strings"
	"testing"
)

// TestRunQuick executes the Fig. 8 walkthrough at -quick size so
// `go test ./...` exercises the example end to end.
func TestRunQuick(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dustbathing bouts",
		"template (len",
		"two-proportion z-test",
		"net value",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
