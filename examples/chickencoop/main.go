// Chickencoop reproduces the paper's §5 scenario end to end: the one
// domain the authors found where something like early classification might
// make sense. It mines a dustbathing template from annotated telemetry,
// truncates it, shows the truncation detects bouts just as precisely
// (Fig. 8), and prices the early intervention (startling the chicken with
// a light) with the cost model of Appendix B.
//
//	go run ./examples/chickencoop [-quick]
//
// The -quick flag shrinks the telemetry stream so the walkthrough (and its
// smoke test) finishes in a couple of seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"etsc/internal/core"
	"etsc/internal/stats"
	"etsc/internal/stream"
	"etsc/internal/synth"
	"etsc/internal/ts"
)

func main() {
	quick := flag.Bool("quick", false, "smaller telemetry stream, faster run")
	flag.Parse()
	if err := run(os.Stdout, *quick); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, quick bool) error {
	streamLen := 1_000_000
	if quick {
		streamLen = 150_000
	}

	// 1. A day-scale telemetry stream with annotated behaviours.
	cfg := synth.DefaultChickenConfig()
	cfg.DustbathProb = 0.08
	data, intervals, err := synth.ChickenStream(synth.NewRand(13), cfg, streamLen)
	if err != nil {
		return err
	}
	dust := synth.IntervalsOf(intervals, synth.Dustbathing)
	fmt.Fprintf(w, "telemetry: %d points, %d dustbathing bouts\n", len(data), len(dust))
	if len(dust) < 2 {
		return fmt.Errorf("chickencoop: only %d dustbathing bouts generated; need at least 2", len(dust))
	}

	// 2. "Template discovery": extract the opening shake phase of the
	//    first annotated bout. (The paper notes this discovery step must
	//    happen BEFORE any UCR-format dataset could even be made.)
	first := dust[0]
	tmplLen := synth.DustbathingTemplateLen
	if first.End-first.Start < tmplLen {
		tmplLen = first.End - first.Start
	}
	template := ts.Series(data[first.Start : first.Start+tmplLen]).Clone()
	truncated := template[:tmplLen*7/12] // ~the paper's 70-of-120
	fmt.Fprintf(w, "template (len %d):  %s\n", len(template), ts.Sparkline(template, 60))
	fmt.Fprintf(w, "truncated (len %d): %s\n\n", len(truncated), ts.Sparkline(truncated, 60))

	// 3. Compare the two templates' nearest-neighbour precision,
	//    excluding the bout the template came from.
	var truth []stream.GroundTruth
	for _, iv := range dust {
		truth = append(truth, stream.GroundTruth{Label: 1, Start: iv.Start, End: iv.End})
	}
	k := len(dust) - 1
	type rowT struct {
		name      string
		hits, k   int
		precision float64
		maxDist   float64
	}
	var rows []rowT
	for _, tc := range []struct {
		name string
		tmpl ts.Series
	}{{"full", template}, {"truncated", truncated}} {
		mon, err := stream.NewTemplateMonitor(tc.tmpl, 1, len(tc.tmpl)/2)
		if err != nil {
			return err
		}
		dets, err := mon.TopK(data, k)
		if err != nil {
			return err
		}
		hits, total := stream.ScoreTemplateDetections(dets, truth, 1, len(tc.tmpl))
		maxDist := 0.0
		for _, d := range dets {
			if d.Dist > maxDist {
				maxDist = d.Dist
			}
		}
		rows = append(rows, rowT{tc.name, hits, total, float64(hits) / float64(total), maxDist})
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s template: %d/%d nearest neighbours are real dustbathing (precision %.1f%%)\n",
			r.name, r.hits, r.k, r.precision*100)
	}
	test, err := stats.TwoProportionZTest(rows[0].hits, rows[0].k, rows[1].hits, rows[1].k, 0.05)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "two-proportion z-test: p=%.3f — not significantly different: the short template is as good\n\n",
		test.PValue)

	// 4. Price the intervention. Startling a chicken out of dustbathing:
	//    tiny intervention cost, modest prevented damage (mite load),
	//    chickens desensitize to frequent alarms so FPs are not free.
	//    The detection threshold is *calibrated from the data* — the
	//    analogue of the paper's "within 1.7 of this template" — as a
	//    small margin over the worst in-bout nearest-neighbour distance.
	cost := core.CostModel{EventDamage: 2.0, InterventionCost: 0.05, InterventionEfficacy: 0.8}
	threshold := rows[1].maxDist * 1.05
	mon, err := stream.NewTemplateMonitor(truncated, threshold, len(truncated)/2)
	if err != nil {
		return err
	}
	dets, err := mon.Run(data)
	if err != nil {
		return err
	}
	tp, total := stream.ScoreTemplateDetections(dets, truth, 1, len(truncated))
	fp := total - tp
	fn := len(dust) - tp
	if fn < 0 {
		fn = 0
	}
	fmt.Fprintf(w, "deployed truncated-template detector at calibrated threshold %.2f:\n", threshold)
	fmt.Fprintf(w, "  %d alarms: %d true, %d false, %d bouts missed\n", total, tp, fp, fn)
	fmt.Fprintf(w, "  break-even precision %.2f, measured %.2f\n",
		cost.BreakEvenPrecision(), float64(tp)/float64(total))
	fmt.Fprintf(w, "  net value: $%+.2f\n\n", cost.Net(tp, fp, fn))

	report := core.Evaluate(core.Assessment{
		Domain:   "chicken dustbathing early intervention",
		Cost:     &cost,
		Measured: &core.MeasuredDeployment{TP: tp, FP: fp, FN: fn},
	})
	fmt.Fprint(w, report)
	fmt.Fprintln(w, "\nEven here the paper's caveat applies: this is classification with a")
	fmt.Fprintln(w, "shorter template — no ETSC model was needed to discover it.")
	return nil
}
