// Denormalization reproduces the paper's §4 experiment interactively:
// pick an algorithm and a shift magnitude, and watch the accuracy plunge
// that every published ETSC method suffers the moment data stops arriving
// pre-z-normalized.
//
//	go run ./examples/denormalization -algo edsc-kde -shift 1.0
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"etsc/internal/core"
	"etsc/internal/etsc"
	"etsc/internal/synth"
	"etsc/internal/ts"
)

func main() {
	algo := flag.String("algo", "ects", "one of: ects, relaxed-ects, edsc-che, edsc-kde, relclass, ldg, teaser, prob, costaware, ecdire")
	shift := flag.Float64("shift", 1.0, "max per-exemplar offset (the paper uses U[-1,1])")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	data, err := synth.GunPoint(synth.NewRand(*seed), synth.DefaultGunPointConfig())
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := data.Split(synth.NewRand(*seed+7), 0.5)
	if err != nil {
		log.Fatal(err)
	}

	var clf etsc.EarlyClassifier
	switch strings.ToLower(*algo) {
	case "ects":
		clf, err = etsc.NewECTS(train, false, 0)
	case "relaxed-ects":
		clf, err = etsc.NewECTS(train, true, 0)
	case "edsc-che":
		clf, err = etsc.NewEDSC(train, etsc.DefaultEDSCConfig(etsc.CHE))
	case "edsc-kde":
		clf, err = etsc.NewEDSC(train, etsc.DefaultEDSCConfig(etsc.KDE))
	case "relclass":
		clf, err = etsc.NewRelClass(train, etsc.DefaultRelClassConfig(false))
	case "ldg":
		clf, err = etsc.NewRelClass(train, etsc.DefaultRelClassConfig(true))
	case "teaser":
		clf, err = etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	case "prob":
		clf, err = etsc.NewProbThreshold(train, 0.8, 10)
	case "costaware":
		clf, err = etsc.NewCostAware(train, etsc.DefaultCostAwareConfig())
	case "ecdire":
		clf, err = etsc.NewECDIRE(train, etsc.DefaultECDIREConfig())
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}

	// Show what the perturbation looks like (Fig. 6).
	ex := test.Instances[0].Series
	rng := synth.NewRand(*seed + 1)
	offset := (rng.Float64()*2 - 1) * *shift
	fmt.Printf("a test exemplar, original and shifted by %+.3f (the camera tilting ~2 degrees):\n", offset)
	fmt.Printf("  %s\n", ts.Sparkline(ex, 70))
	fmt.Printf("  %s\n\n", ts.Sparkline(ts.Shift(ex, offset), 70))

	ns, err := core.MeasureNormSensitivity(clf, test, synth.NewRand(*seed+1), *shift, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on GunPoint-like data:\n", clf.Name())
	fmt.Printf("  UCR-normalized test data:   %.1f%% accuracy (earliness %.1f%%)\n",
		ns.NormalizedAccuracy*100, ns.NormalizedEarliness*100)
	fmt.Printf("  shifted by U[-%.1f, %.1f]:    %.1f%% accuracy (earliness %.1f%%)\n",
		*shift, *shift, ns.DenormalizedAccuracy*100, ns.DenormalizedEarliness*100)
	fmt.Printf("  drop: %.1f points\n\n", ns.Drop()*100)

	if ns.Brittle(0.10) {
		fmt.Println("verdict: BRITTLE — the model assumes incoming values are z-normalized")
		fmt.Println("\"based on other values that do not yet exist\" (paper §4). In streaming")
		fmt.Println("deployment it is condemned to false negatives.")
	} else {
		fmt.Println("verdict: robust to offsets — this model normalizes its own prefixes")
		fmt.Println("(only TEASER does, per the paper's footnote 2).")
	}
}
