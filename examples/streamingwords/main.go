// Streamingwords deploys a cat/dog early classifier on continuous speech
// and demonstrates all three of the paper's confusability problems —
// prefix (§3.1), inclusion (§3.2), homophone (§3.3) — plus the
// meaningfulness checklist verdict for the domain.
//
//	go run ./examples/streamingwords [-quick]
//
// The -quick flag shrinks the training sets so the walkthrough (and its
// smoke test) finishes in a couple of seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"etsc/internal/core"
	"etsc/internal/etsc"
	"etsc/internal/stats"
	"etsc/internal/stream"
	"etsc/internal/synth"
)

const wordLen = 44

func main() {
	quick := flag.Bool("quick", false, "smaller training sets, faster run")
	flag.Parse()
	if err := run(os.Stdout, *quick); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, quick bool) error {
	perClass := 30
	if quick {
		perClass = 12
	}

	// Train the cat/dog model at stream scale.
	train, err := synth.WordDataset(synth.NewRand(11), []string{"cat", "dog"},
		perClass, wordLen, synth.DefaultWordConfig())
	if err != nil {
		return err
	}
	clf, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	if err != nil {
		return err
	}
	verifier, err := stream.NewNNVerifier(train, 0.95, 1.0)
	if err != nil {
		return err
	}

	sentences := []struct {
		name  string
		words []string
	}{
		{"prefix problem (Fig 2)", synth.CathySentence},
		{"inclusion problem (§3.2)", synth.MorningLightSentence},
		{"homophone problem (§3.3)", synth.LeviticusSentence},
	}
	for _, s := range sentences {
		if err := runSentence(w, s.name, s.words, []string{"cat", "dog"}, clf, verifier); err != nil {
			return err
		}
	}

	// §3.4 monitors the vocalization of {gun, point} over the Amy Gunn
	// sentence, which packs prefixes, inclusions and homophones together.
	gpTrain, err := synth.WordDataset(synth.NewRand(12), []string{"gun", "point"},
		perClass, wordLen, synth.DefaultWordConfig())
	if err != nil {
		return err
	}
	gpClf, err := etsc.NewTEASER(gpTrain, etsc.DefaultTEASERConfig())
	if err != nil {
		return err
	}
	gpVerifier, err := stream.NewNNVerifier(gpTrain, 0.95, 1.0)
	if err != nil {
		return err
	}
	if err := runSentence(w, "all at once (§3.4, gun/point model)", synth.AmyGunnSentence,
		[]string{"gun", "point"}, gpClf, gpVerifier); err != nil {
		return err
	}

	// The paper's recommendation, as a library call: the symbolic
	// confusability analysis of the deployment vocabulary.
	fmt.Fprintln(w, "=== meaningfulness checklist for the cat/dog domain ===")
	lexicon := coreLexicon()
	zipf, err := stats.NewZipf(1.0, 10_000)
	if err != nil {
		return err
	}
	var target core.LexiconEntry
	for _, e := range lexicon {
		if e.Name == "cat" {
			target = e
		}
	}
	conf, err := core.AnalyzeLexiconConfusability(target, lexicon, zipf)
	if err != nil {
		return err
	}
	for _, c := range conf.Confusions {
		fmt.Fprintf(w, "  %-12s %-10s expect %.1fx the target's frequency\n",
			c.Entry.Name, c.Relation, c.FrequencyWeight)
	}
	cost := core.CostModel{EventDamage: 1000, InterventionCost: 200, InterventionEfficacy: 1}
	report := core.Evaluate(core.Assessment{
		Domain:        "spoken cat/dog monitoring",
		Cost:          &cost,
		Confusability: &conf,
	})
	fmt.Fprintln(w)
	fmt.Fprint(w, report)
	return nil
}

func runSentence(w io.Writer, name string, words, classes []string, clf etsc.EarlyClassifier, v stream.Verifier) error {
	fmt.Fprintf(w, "=== %s ===\n", name)
	fmt.Fprintf(w, "    \"%s\"\n", strings.Join(words, " "))
	sentence, intervals, err := synth.Sentence(synth.NewRand(23), words, synth.DefaultWordConfig(), 30)
	if err != nil {
		return err
	}
	mon := &stream.Monitor{Classifier: clf, Stride: 2, Step: 2, Suppress: wordLen / 2}
	dets, err := mon.Run(sentence)
	if err != nil {
		return err
	}
	var truth []stream.GroundTruth
	for _, iv := range intervals {
		for ci, class := range classes {
			if iv.Word == class {
				truth = append(truth, stream.GroundTruth{Label: ci + 1, Start: iv.Start, End: iv.End})
			}
		}
	}
	tally := stream.Match(dets, truth, wordLen/2)
	stream.Verify(dets, sentence, wordLen, v)
	recanted := 0
	for _, d := range dets {
		if d.Recanted {
			recanted++
		}
	}
	for _, d := range dets {
		word := "(silence)"
		for _, iv := range intervals {
			if d.DecisionAt >= iv.Start && d.DecisionAt < iv.End+wordLen/2 {
				word = iv.Word
				break
			}
		}
		class := classes[0]
		if d.Label >= 1 && d.Label <= len(classes) {
			class = classes[d.Label-1]
		}
		status := "STANDS"
		if d.Recanted {
			status = "recanted"
		}
		fmt.Fprintf(w, "    alarm '%s' at point %5d (during %q) — %s\n", class, d.DecisionAt, word, status)
	}
	fmt.Fprintf(w, "    TP=%d FP=%d recanted=%d/%d\n\n", tally.TP, tally.FP, recanted, len(dets))
	return nil
}

// coreLexicon converts the synthesizer's phoneme lexicon into the analysis
// format, with rough Zipf ranks for common vs rare words.
func coreLexicon() []core.LexiconEntry {
	ranks := map[string]int{
		"cat": 400, "dog": 350, "cattle": 1800, "catalog": 2500,
		"catechism": 9000, "catholic": 1500, "cathys": 8000,
		"dogmatic": 7000, "dogmatized": 9500, "doggery": 9900,
	}
	var out []core.LexiconEntry
	for w, ph := range synth.Lexicon {
		rank, ok := ranks[w]
		if !ok {
			continue
		}
		tokens := make([]string, len(ph))
		for i, p := range ph {
			tokens[i] = string(p)
		}
		out = append(out, core.LexiconEntry{Name: w, Tokens: tokens, Rank: rank})
	}
	return out
}
