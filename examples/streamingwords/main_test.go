package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunQuick executes the whole walkthrough at -quick size so
// `go test ./...` exercises the example end to end.
func TestRunQuick(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"prefix problem",
		"inclusion problem",
		"homophone problem",
		"meaningfulness checklist",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunWritesNothingToStdout guards the refactor: everything goes
// through the writer, so the example stays capturable.
func TestRunWritesNothingToStdout(t *testing.T) {
	if err := run(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}
