package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunQuick exercises the whole remote walkthrough — in-process /v1
// server, typed client, cursor polling, final reports — at -quick size so
// `go test ./...` covers the example end to end.
func TestRunQuick(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"etsc-serve up at http://127.0.0.1:",
		"registered coop-stock",
		"spec=probthreshold:threshold=0.95,minprefix=12",
		"final coop-stock",
		"final coop-custom",
		"hub totals:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunWritesNothingToStdout guards the refactor: everything goes
// through the writer, so the example stays capturable.
func TestRunWritesNothingToStdout(t *testing.T) {
	if err := run(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}
