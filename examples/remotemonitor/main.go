// Remotemonitor is the serving stack end to end from a client's seat: it
// boots an etsc-serve `/v1` API in process (hub + internal/serve on a
// loopback listener), then — exclusively through the typed internal/client
// — registers a chicken-coop telemetry stream plus a second stream whose
// classifier comes from a declarative spec override, pushes batched
// accelerometer telemetry, polls detections incrementally with the
// `since` cursor exactly as a remote dashboard would, and detaches both
// streams for their final reports.
//
//	go run ./examples/remotemonitor [-quick]
//
// Everything after the boot line flows over HTTP: the example never
// touches the hub directly, so what it prints is exactly what any remote
// client of the wire protocol can see.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"etsc/internal/client"
	"etsc/internal/hub"
	"etsc/internal/serve"
)

func main() {
	quick := flag.Bool("quick", false, "shorter telemetry, faster run")
	flag.Parse()
	if err := run(os.Stdout, *quick); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, quick bool) error {
	minLen := 12_000
	if quick {
		minLen = 3_000
	}

	// Boot the server side: demo kinds, hub, /v1 API on a loopback port.
	kinds, err := hub.DemoKinds(7)
	if err != nil {
		return err
	}
	h, err := hub.New(hub.Config{Workers: 2})
	if err != nil {
		return err
	}
	srv, err := serve.New(h, kinds)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(w, "etsc-serve up at %s (kinds: chicken, gunpoint, words)\n\n", base)

	// Everything below is the remote side: typed client only. WithRetry
	// rides out transient transport faults on the idempotent calls (list,
	// poll, detach) the way a real dashboard client should.
	c, err := client.New(base, client.WithRetry(3, 100*time.Millisecond))
	if err != nil {
		return err
	}
	ctx := context.Background()

	// One stream on the kind's stock pipeline, one with a declarative
	// spec override trained server-side on the kind's dataset.
	const stock, custom = "coop-stock", "coop-custom"
	info, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: stock, Kind: "chicken"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "registered %-12s kind=%s spec=%s engine=%s\n", info.ID, info.Kind, info.Spec, info.Engine)
	info, err = c.CreateStream(ctx, client.CreateStreamRequest{
		ID: custom, Kind: "chicken", Spec: "probthreshold:threshold=0.95,minprefix=12",
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "registered %-12s kind=%s spec=%s engine=%s\n\n", info.ID, info.Kind, info.Spec, info.Engine)

	// Render telemetry for each stream (distinct seeded generators — two
	// different coops) and push it in sensor-gateway-sized batches,
	// polling the detections cursor after every few batches.
	var chicken hub.Kind
	for _, k := range kinds {
		if k.Name == "chicken" {
			chicken = k
		}
	}
	data := map[string][]float64{}
	for i, id := range []string{stock, custom} {
		data[id], err = chicken.Gen(rand.New(rand.NewSource(int64(40+i))), minLen)
		if err != nil {
			return err
		}
	}

	const batch = 256
	cursors := map[string]int{}
	for off := 0; off < minLen; off += batch {
		for _, id := range []string{stock, custom} {
			d := data[id]
			end := off + batch
			if end > len(d) {
				end = len(d)
			}
			if off >= end {
				continue
			}
			// Backpressure means the batch was not applied: retry the
			// same batch whole after backing off.
			for {
				_, err := c.Push(ctx, id, d[off:end])
				if err == nil {
					break
				}
				if !client.IsBackpressure(err) {
					return err
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
		// Poll incrementally: only detections past the cursor arrive.
		if off/batch%4 == 3 {
			for _, id := range []string{stock, custom} {
				page, err := c.Detections(ctx, id, cursors[id])
				if err != nil {
					return err
				}
				for _, det := range page.Detections {
					fmt.Fprintf(w, "%-12s alarm: dustbathing onset near t=%d (decided at t=%d, %.0f%% of window seen)\n",
						id, det.Start, det.DecisionAt, det.Earliness*100)
				}
				cursors[id] = page.Next
			}
		}
	}

	// Detach for the final reports — the drain guarantees every queued
	// batch is applied before the report is cut.
	fmt.Fprintln(w)
	for _, id := range []string{stock, custom} {
		rep, err := c.DeleteStream(ctx, id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "final %-12s %d points, %d detections (%d recanted)\n",
			id, rep.Stats.Position, len(rep.Detections), rep.Stats.Recanted)
	}
	totals, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hub totals: %d points over the session, %d batches\n", totals.Points, totals.Batches)
	return nil
}
