// Quickstart: train an early classifier on a UCR-format dataset, evaluate
// its accuracy/earliness trade-off, and watch it decide on a single
// incoming exemplar.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"etsc/internal/etsc"
	"etsc/internal/synth"
	"etsc/internal/ts"
)

func main() {
	// 1. Generate a GunPoint-like dataset (150 exemplars, length 150,
	//    z-normalized — the UCR format) and split it.
	data, err := synth.GunPoint(synth.NewRand(42), synth.DefaultGunPointConfig())
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := data.Split(synth.NewRand(7), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test exemplars of length %d\n",
		train.Len(), test.Len(), train.SeriesLen())

	// 2. Train TEASER (the one algorithm in the paper's Table 1 family
	//    without the normalization flaw — see footnote 2).
	clf, err := etsc.NewTEASER(train, etsc.DefaultTEASERConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Evaluate on held-out exemplars, feeding prefixes two points at a
	//    time, exactly as data would arrive.
	summary, err := etsc.Evaluate(clf, test, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: accuracy %.1f%%, mean earliness %.1f%%, harmonic mean %.3f\n",
		clf.Name(), summary.Accuracy()*100, summary.MeanEarliness()*100, summary.HarmonicMean())

	// 4. Watch one exemplar stream in.
	exemplar := test.Instances[0]
	fmt.Printf("\nincoming exemplar (true class %d):\n  %s\n",
		exemplar.Label, ts.Sparkline(exemplar.Series, 75))
	label, length, forced := etsc.RunOne(clf, exemplar.Series, 1)
	if forced {
		fmt.Printf("no early decision; forced to classify at full length: class %d\n", label)
		return
	}
	fmt.Printf("early classification: class %d after seeing %d of %d points (%.0f%%)\n",
		label, length, clf.FullLength(), 100*float64(length)/float64(clf.FullLength()))
	fmt.Println("\nNOTE: this works because the exemplar arrives pre-segmented and")
	fmt.Println("pre-normalized. The paper's point — and the rest of this repo — is")
	fmt.Println("about what happens when it doesn't. Try examples/streamingwords next.")
}
