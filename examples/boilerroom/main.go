// Boilerroom demonstrates the paper's Appendix A: the early-warning tasks
// that are *well-posed* because they depend only on values, envelopes or
// frequencies — never on recognizing the prefix of a shape. These are the
// contrast class for everything else in this repository: the same alarm
// machinery, none of the prefix/inclusion/homophone/normalization traps.
//
//	go run ./examples/boilerroom
package main

import (
	"fmt"
	"log"
	"math"

	"etsc/internal/synth"
	"etsc/internal/ts"
	"etsc/internal/valuemon"
)

func main() {
	boiler()
	goldenBatch()
	dustbathQuota()
}

// boiler: "If a sensor detects increasing pressure readings: 180, 181,
// 182, …, it would make perfect sense to sound an early warning that the
// pressure may approach 200 psi."
func boiler() {
	fmt.Println("=== Appendix A.1 — boiler pressure (value, not shape) ===")
	rng := synth.NewRand(1)
	var pressure ts.Series
	p := 150.0
	for i := 0; i < 400; i++ {
		if i > 250 {
			p += 0.5 // a developing fault: steady climb
		}
		pressure = append(pressure, p+rng.NormFloat64()*0.8)
	}
	mon, err := valuemon.NewValueMonitor(200, 2, 30)
	if err != nil {
		log.Fatal(err)
	}
	w, ok := mon.Run(pressure)
	if !ok {
		log.Fatal("no warning — the climb should have been projected")
	}
	crossing := -1
	for i, v := range pressure {
		if v >= 200 {
			crossing = i
			break
		}
	}
	fmt.Printf("  warning at sample %d: %s\n", w.At, w.Reason)
	if crossing < 0 {
		fmt.Println("  (the limit itself was never reached in this run)")
	} else {
		fmt.Printf("  the limit was actually crossed at sample %d — %d samples of lead time\n",
			crossing, crossing-w.At)
	}
	fmt.Println("  no shape model, no prefix assumption, no normalization trap")
	fmt.Println()
}

// goldenBatch: "at every time point in a single run (plus or minus some
// wiggle room) we know what range of values are acceptable."
func goldenBatch() {
	fmt.Println("=== Appendix A.2 — golden batch monitoring (envelope, not shape) ===")
	rng := synth.NewRand(2)
	profile := func(t int) float64 { // the nominal batch temperature profile
		x := float64(t) / 200
		return 20 + 60*x*math.Exp(1-x*3)*3
	}
	var golden [][]float64
	for r := 0; r < 20; r++ {
		run := make([]float64, 200)
		for t := range run {
			run[t] = profile(t) + rng.NormFloat64()*0.6
		}
		golden = append(golden, run)
	}
	env, err := valuemon.NewBatchEnvelope(golden, 3)
	if err != nil {
		log.Fatal(err)
	}

	good := make([]float64, 200)
	bad := make([]float64, 200)
	for t := range good {
		good[t] = profile(t) + rng.NormFloat64()*0.6
		bad[t] = profile(t) + rng.NormFloat64()*0.6
		if t > 120 {
			bad[t] += 0.25 * float64(t-120) // drifting out of spec
		}
	}
	if w, ok := env.Check(good); ok {
		log.Fatalf("false alarm on an in-spec run: %+v", w)
	}
	fmt.Println("  in-spec run: no alarm")
	w, ok := env.Check(bad)
	if !ok {
		log.Fatal("drifting run not caught")
	}
	fmt.Printf("  drifting run: %s\n", w.Reason)
	fmt.Printf("  caught %d samples before the end of the batch\n", env.Len()-w.At)
	fmt.Println()
}

// dustbathQuota: "a chicken engaging in dustbathing more than 40 times a
// day is required to be culled … this setting only considers the
// frequency of (fully observed, not 'early' observed) behaviors."
func dustbathQuota() {
	fmt.Println("=== Appendix A.3 — dustbathing frequency (count, not shape) ===")
	cfg := synth.DefaultChickenConfig()
	cfg.DustbathProb = 0.22 // a mite-ridden chicken, well over quota pace
	data, intervals, err := synth.ChickenStream(synth.NewRand(3), cfg, 300_000)
	if err != nil {
		log.Fatal(err)
	}
	day := len(data)
	dust := synth.IntervalsOf(intervals, synth.Dustbathing)
	quota := len(dust) * 2 / 5 // the day will end at 2.5x the quota
	if quota < 1 {
		quota = 1
	}
	mon, err := valuemon.NewFrequencyMonitor(quota, day)
	if err != nil {
		log.Fatal(err)
	}
	mon.Reset()
	ends := map[int]bool{}
	for _, iv := range dust {
		ends[iv.End-1] = true
	}
	for at := 0; at < day; at++ {
		if w, ok := mon.Observe(at, ends[at]); ok {
			fmt.Printf("  %d bouts today (quota %d); warning at %.0f%% of the day: %s\n",
				len(dust), quota, 100*float64(at)/float64(day), w.Reason)
			fmt.Println("  each bout was FULLY observed before being counted — nothing early-classified")
			return
		}
	}
	log.Fatal("quota pace never warned")
}
