// Etsc-apisurface prints the exported API surface of the repository's
// library packages — one normalized line per exported constant, variable,
// type, field, function, and method — sorted, so two runs can be diffed
// textually. CI runs it against the working tree and the previous commit
// and fails when a line disappears: a removed or re-typed export is an API
// break that must be called out (commit with "[api-break]" in the message
// to acknowledge one deliberately).
//
//	etsc-apisurface [root]
//
// root defaults to ".". Only syntax is needed (go/parser, no type
// checking), so the tool can run over any checkout, buildable or not.
// Command and example packages (cmd/, examples/) are skipped: package
// main exports nothing. Struct fields and interface methods count:
// unexported ones are elided, exported ones are part of the surface.
// Exported const and var initializers are included too — wire-contract
// values (error codes, route strings) are behaviour, not formatting.
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	lines, err := surface(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etsc-apisurface:", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// surface collects the sorted exported-surface lines under root.
func surface(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		switch d.Name() {
		case ".git", "testdata", "cmd", "examples":
			if path != root {
				return filepath.SkipDir
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	var lines []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		for name, pkg := range pkgs {
			if name == "main" {
				continue
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					lines = append(lines, declLines(fset, rel, decl)...)
				}
			}
		}
	}
	sort.Strings(lines)
	// Dedup (grouped const blocks can repeat a rendered line).
	out := lines[:0]
	var prev string
	for _, l := range lines {
		if l != prev {
			out = append(out, l)
		}
		prev = l
	}
	return out, nil
}

// declLines renders one top-level declaration's exported surface.
func declLines(fset *token.FileSet, pkg string, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) > 0 {
			rt := typeString(fset, d.Recv.List[0].Type)
			// Methods on unexported types are reachable only through
			// interfaces; the interface lines cover them.
			if !exportedReceiver(rt) {
				return nil
			}
			recv = "(" + rt + ") "
		}
		return []string{fmt.Sprintf("%s: func %s%s%s", pkg, recv, d.Name.Name, signatureString(fset, d.Type))}
	case *ast.GenDecl:
		var out []string
		for si, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				out = append(out, typeSpecLines(fset, pkg, sp)...)
			case *ast.ValueSpec:
				out = append(out, valueSpecLines(fset, pkg, d.Tok.String(), si, sp)...)
			}
		}
		return out
	}
	return nil
}

// exportedReceiver reports whether a receiver type string names an
// exported type (stripping any pointer/generic decoration).
func exportedReceiver(rt string) bool {
	rt = strings.TrimLeft(rt, "*")
	return rt != "" && ast.IsExported(strings.SplitN(rt, "[", 2)[0])
}

// typeSpecLines renders an exported type: its kind line plus one line per
// exported struct field or interface method, so field-level breaks show
// up as line removals.
func typeSpecLines(fset *token.FileSet, pkg string, sp *ast.TypeSpec) []string {
	if !sp.Name.IsExported() {
		return nil
	}
	name := sp.Name.Name
	switch t := sp.Type.(type) {
	case *ast.StructType:
		lines := []string{fmt.Sprintf("%s: type %s struct", pkg, name)}
		for _, f := range t.Fields.List {
			ft := typeString(fset, f.Type)
			if len(f.Names) == 0 {
				// Embedded field: exported if its type name is.
				if exportedReceiver(strings.TrimPrefix(ft, "*")) || ast.IsExported(lastSegment(ft)) {
					lines = append(lines, fmt.Sprintf("%s: type %s struct { %s }", pkg, name, ft))
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					lines = append(lines, fmt.Sprintf("%s: type %s struct { %s %s }", pkg, name, fn.Name, ft))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{fmt.Sprintf("%s: type %s interface", pkg, name)}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				lines = append(lines, fmt.Sprintf("%s: type %s interface { %s }", pkg, name, typeString(fset, m.Type)))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					lines = append(lines, fmt.Sprintf("%s: type %s interface { %s%s }", pkg, name, mn.Name, signatureString(fset, ft)))
				}
			}
		}
		return lines
	default:
		return []string{fmt.Sprintf("%s: type %s %s", pkg, name, typeString(fset, sp.Type))}
	}
}

// valueSpecLines renders exported consts and vars, values included. A
// const spec with no explicit value inherits the group's iota expression,
// so its *position* in the group is its value: the "#N" suffix makes
// reordering or inserting members — which renumbers everything after the
// change — show up as line removals.
func valueSpecLines(fset *token.FileSet, pkg, kind string, specIdx int, sp *ast.ValueSpec) []string {
	var out []string
	for i, n := range sp.Names {
		if !n.IsExported() {
			continue
		}
		line := fmt.Sprintf("%s: %s %s", pkg, kind, n.Name)
		if sp.Type != nil {
			line += " " + typeString(fset, sp.Type)
		}
		if i < len(sp.Values) {
			line += " = " + typeString(fset, sp.Values[i])
		} else if kind == "const" {
			line += fmt.Sprintf(" #%d", specIdx)
		}
		out = append(out, line)
	}
	return out
}

// signatureString renders a function type's parameter/result signature.
func signatureString(fset *token.FileSet, ft *ast.FuncType) string {
	s := typeString(fset, ft)
	return strings.TrimPrefix(s, "func")
}

// typeString prints any expression on one normalized line.
func typeString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}

// lastSegment returns the identifier after the final dot (pkg.Type → Type).
func lastSegment(s string) string {
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}
