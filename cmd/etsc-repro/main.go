// Command etsc-repro regenerates every table and figure of "When is Early
// Classification of Time Series Meaningful?" from the synthetic substrates
// in this repository.
//
// Usage:
//
//	etsc-repro [-quick] [-seed N] [-run fig1,fig2,...] [-workers N] [-traincache] [-engine pruned|eager]
//	etsc-repro -spec ects:support=0 -spec teaser:v=2 [-quick]
//
// With no -run flag every experiment runs, in paper order. Output is the
// text tables recorded in EXPERIMENTS.md.
//
// The repeatable -spec flag names classifiers declaratively (see
// etsc.ParseSpec: "algo:key=value,..." over the registered algorithm
// names) and evaluates them on the standard GunPoint-like split via the
// speceval experiment; giving -spec without -run runs only speceval.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"etsc/internal/etsc"
	"etsc/internal/experiments"
)

type runner struct {
	name string
	desc string
	run  func(experiments.Config) (fmt.Stringer, error)
}

// tabler adapts the per-experiment Table() string method to fmt.Stringer.
type tabler interface{ Table() string }

func wrap[T tabler](f func(experiments.Config) (T, error)) func(experiments.Config) (fmt.Stringer, error) {
	return func(cfg experiments.Config) (fmt.Stringer, error) {
		r, err := f(cfg)
		if err != nil {
			// The result may still be renderable for diagnosis. The
			// runners return typed nil pointers on hard errors, which stay
			// non-nil through the any() conversion — compare via reflect.
			var s fmt.Stringer
			if rv := reflect.ValueOf(any(r)); rv.Kind() == reflect.Pointer && !rv.IsNil() {
				s = stringerFunc(r.Table)
			}
			return s, err
		}
		return stringerFunc(r.Table), nil
	}
}

type stringerFunc func() string

func (f stringerFunc) String() string { return f() }

func main() {
	quick := flag.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
	seed := flag.Int64("seed", 42, "generator seed")
	run := flag.String("run", "", "comma-separated experiment names (default: all)")
	workers := flag.Int("workers", 0, "worker pool size for parallel evaluation (0 = NumCPU, 1 = serial; results identical)")
	traincache := flag.Bool("traincache", false, "train algorithm suites through a shared memoized prefix-distance context (results identical, training faster)")
	engine := flag.String("engine", "pruned", "inference engine: pruned (lazy NN frontier) or eager (results identical)")
	var specs []etsc.Spec
	flag.Func("spec", "classifier spec for the speceval experiment (repeatable; algo:key=value,... — see -listspecs)", func(s string) error {
		spec, err := etsc.ParseSpec(s)
		if err != nil {
			return err
		}
		if _, ok := etsc.Lookup(spec.Algo); !ok {
			return fmt.Errorf("unknown algorithm %q (registered: %s)", spec.Algo, strings.Join(etsc.Algorithms(), ", "))
		}
		specs = append(specs, spec)
		return nil
	})
	listSpecs := flag.Bool("listspecs", false, "print the registered algorithms with their spec parameters and exit")
	flag.Parse()
	if *listSpecs {
		for _, line := range etsc.AlgorithmDocs() {
			fmt.Println(line)
		}
		return
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "etsc-repro: -workers must be >= 0 (0 = NumCPU), got %d\n", *workers)
		os.Exit(2)
	}
	mode, err := etsc.ParseEngineMode(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etsc-repro: %v\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Parallelism: *workers, TrainCache: *traincache, Engine: mode}

	all := []runner{
		{"fig1", "cat/dog utterances in the UCR format", wrap(experiments.RunFig1)},
		{"fig2", "the Cathy's-dogmatic-catechism streaming sentence", wrap(experiments.RunFig2)},
		{"fig3", "early classification traces (TEASER and user threshold)", wrap(experiments.RunFig3)},
		{"fig5", "time series homophones in non-gesture data", wrap(experiments.RunFig5)},
		{"table1", "normalized vs denormalized accuracy of six ETSC algorithms", wrap(experiments.RunTable1)},
		{"table1ext", "extended: threshold/cost-aware/ECDIRE/TEASER-raw variants", wrap(experiments.RunTable1Extended)},
		{"fig7", "raw ECG per-beat mean/std wander", wrap(experiments.RunFig7)},
		{"fig8", "dustbathing template vs truncated template", wrap(experiments.RunFig8)},
		{"fig9", "prefix-length error sweep on GunPoint", wrap(experiments.RunFig9)},
		{"appendixb", "deployed monitor economics (FP:TP vs break-even)", wrap(experiments.RunAppendixB)},
		{"speceval", "declarative -spec suite on the GunPoint split", wrap(func(cfg experiments.Config) (*experiments.SpecEvalResult, error) {
			return experiments.RunSpecEval(cfg, specs)
		})},
	}

	selected := map[string]bool{}
	if *run != "" {
		for _, n := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(strings.ToLower(n))] = true
		}
		// Giving -spec always runs the spec evaluation, even when -run
		// names other experiments; silently dropping it would be worse.
		if len(specs) > 0 {
			selected["speceval"] = true
		}
	} else if len(specs) > 0 {
		// -spec without -run means "evaluate exactly these specs".
		selected["speceval"] = true
	} else {
		// The default full paper sweep does not include the ad-hoc runner.
		for _, r := range all {
			if r.name != "speceval" {
				selected[r.name] = true
			}
		}
	}

	failures := 0
	for _, r := range all {
		if len(selected) > 0 && !selected[r.name] {
			continue
		}
		fmt.Printf("==== %s — %s (seed %d, quick=%v)\n\n", r.name, r.desc, *seed, *quick)
		start := time.Now()
		out, err := r.run(cfg)
		if out != nil {
			fmt.Println(out.String())
		}
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAILED %s: %v\n", r.name, err)
		}
		fmt.Printf("(%s in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed their paper-claim checks\n", failures)
		os.Exit(1)
	}
}
