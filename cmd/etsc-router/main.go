// Command etsc-router is the multi-node front tier: one HTTP process
// routing the full /v1 protocol across a fixed table of etsc-serve
// backends by the shared FNV-1a placement contract, with live
// rebalancing and backend-death recovery from shared checkpoint storage.
//
//	# three backends sharing checkpoint storage under /var/etsc
//	etsc-serve -addr :8081 -checkpoint /var/etsc/node1 &
//	etsc-serve -addr :8082 -checkpoint /var/etsc/node2 &
//	etsc-serve -addr :8083 -checkpoint /var/etsc/node3 &
//	etsc-router -addr :8080 \
//	    -backends node1=http://localhost:8081,node2=http://localhost:8082,node3=http://localhost:8083 \
//	    -checkpoint-root /var/etsc
//
// Clients speak to the router exactly as they would to a single
// etsc-serve: every /v1 endpoint works unchanged, each proxied response
// carries the owner backend's name in X-Etsc-Backend, and
// POST /admin/rebalance converges placement back to pure hashing after
// deaths or table changes. See internal/router for the ownership model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"etsc/internal/router"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		backends  = flag.String("backends", "", "comma-separated backend table, in placement order: [name=]http://host:port,... (required)")
		ckptRoot  = flag.String("checkpoint-root", "", "shared checkpoint storage root the backends write under (<root>/<name>); enables backend-death stream recovery")
		probeInt  = flag.Duration("probe-interval", time.Second, "health-probe period per backend")
		probeTO   = flag.Duration("probe-timeout", 0, "single health-probe timeout (0 = probe-interval)")
		failThr   = flag.Int("fail-threshold", 3, "consecutive probe failures before a backend is declared dead")
		routeWait = flag.Duration("route-wait", 2*time.Second, "how long a request waits out a dead owner before failing 503/unavailable")
		metricsOn = flag.Bool("metrics", true, "expose the merged Prometheus exposition at GET /metrics")
	)
	flag.Parse()
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "etsc-router: -backends is required (e.g. -backends n1=http://h1:8081,n2=http://h2:8082)")
		flag.Usage()
		os.Exit(2)
	}
	specs, err := parseBackends(*backends)
	if err != nil {
		log.Fatalf("etsc-router: %v", err)
	}

	rt, err := router.New(router.Config{
		Backends:       specs,
		CheckpointRoot: *ckptRoot,
		ProbeInterval:  *probeInt,
		ProbeTimeout:   *probeTO,
		FailThreshold:  *failThr,
		RouteWait:      *routeWait,
	})
	if err != nil {
		log.Fatalf("etsc-router: %v", err)
	}
	if *metricsOn {
		rt.EnableMetrics()
	}
	rt.Start()
	defer rt.Stop()

	for _, b := range rt.Backends() {
		log.Printf("etsc-router: backend %s = %s", b.Name, b.URL)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: rt}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("etsc-router: listening on %s over %d backends", *addr, len(specs))

	select {
	case err := <-errc:
		log.Fatalf("etsc-router: %v", err)
	case <-ctx.Done():
	}
	log.Printf("etsc-router: signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("etsc-router: shutdown: %v", err)
	}
}

// parseBackends splits "-backends n1=http://h:p,http://h2:p2" into specs;
// a bare URL names itself by host:port inside the router.
func parseBackends(s string) ([]router.BackendSpec, error) {
	var specs []router.BackendSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var sp router.BackendSpec
		if i := strings.Index(part, "="); i > 0 && !strings.Contains(part[:i], "://") {
			sp.Name, sp.URL = part[:i], part[i+1:]
		} else {
			sp.URL = part
		}
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no backends in %q", s)
	}
	return specs, nil
}
