// Etsc-serve runs the multi-stream monitoring hub as a service: an HTTP
// ingest endpoint multiplexing any number of telemetry streams through the
// shared engine, or — with -streams — a self-contained load generator that
// drives the hub with synthetic telemetry and reports throughput, ingest
// latency, and detection tallies.
//
// Server mode:
//
//	go run ./cmd/etsc-serve -addr :8080
//	curl -X POST --data '0.1 0.4 -0.2 ...' 'localhost:8080/push?stream=coop7&kind=chicken'
//	curl 'localhost:8080/streams'           # per-stream snapshot
//	curl 'localhost:8080/stats'             # hub totals
//	curl 'localhost:8080/detections?stream=coop7'
//	curl -X POST 'localhost:8080/detach?stream=coop7'
//
// Streams attach lazily on first push; the kind query parameter (words,
// gunpoint, chicken — see hub.DemoKinds) picks the pipeline. The body is
// whitespace-separated floats, the line protocol a sensor gateway can
// produce with printf.
//
// Load-generator mode:
//
//	go run ./cmd/etsc-serve -streams 24 -points 20000 -rate 5000 -workers 8
//
// runs -streams concurrent pushers round-robined over the three demo
// kinds, each pushing -points points in -batch sized batches, paced at
// -rate points/sec per stream (0 = as fast as the hub accepts), then
// prints aggregate throughput, p50/p99 Push latency, and per-kind
// detection tallies.
//
// In both modes -traincache warm-starts the demo detectors through shared
// memoized training contexts (hub.DemoKindsShared): identical pipelines,
// faster startup — every stream of a kind shares the one trained detector
// regardless.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"etsc/internal/etsc"
	"etsc/internal/hub"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address (server mode)")
		workers    = flag.Int("workers", 0, "hub worker pool size (0 = NumCPU)")
		queue      = flag.Int("queue", 0, "per-stream queue depth in batches (0 = default)")
		policy     = flag.String("policy", "block", "backpressure policy: block or drop")
		seed       = flag.Int64("seed", 1, "scenario seed for the demo pipelines")
		streams    = flag.Int("streams", 0, "load-generator mode: number of streams (0 = serve HTTP)")
		points     = flag.Int("points", 20_000, "load generator: points per stream")
		batch      = flag.Int("batch", 64, "load generator: points per Push")
		rate       = flag.Float64("rate", 0, "load generator: points/sec per stream (0 = unthrottled)")
		traincache = flag.Bool("traincache", false, "warm-start the demo detectors through shared memoized training contexts (identical pipelines, faster startup)")
		engine     = flag.String("engine", "pruned", "inference engine for every stream pipeline: pruned (lazy NN frontier) or eager (transcripts identical)")
	)
	flag.Parse()

	var pol hub.Policy
	switch *policy {
	case "block":
		pol = hub.Block
	case "drop":
		pol = hub.Drop
	default:
		log.Fatalf("unknown -policy %q (want block or drop)", *policy)
	}
	mode, err := etsc.ParseEngineMode(*engine)
	if err != nil {
		log.Fatal(err)
	}

	// Warm start: every stream of a kind shares one trained detector either
	// way; -traincache additionally trains the kinds concurrently through
	// shared memoized contexts, which only changes startup wall-clock time
	// (TestDemoKindsSharedMatchesDemoKinds pins the transcripts).
	trainStart := time.Now()
	var kinds []hub.Kind
	if *traincache {
		kinds, err = hub.DemoKindsShared(*seed, *workers)
	} else {
		kinds, err = hub.DemoKinds(*seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	// The engine mode is per-pipeline configuration: apply it to every kind
	// so lazily attached streams inherit it (transcripts are identical
	// either way; the knob trades CPU only).
	for i := range kinds {
		kinds[i].Config.Engine = mode
	}
	log.Printf("etsc-serve: trained %d demo kinds in %v (traincache=%v engine=%s)",
		len(kinds), time.Since(trainStart).Round(time.Millisecond), *traincache, mode)
	h, err := hub.New(hub.Config{Workers: *workers, QueueDepth: *queue, Policy: pol})
	if err != nil {
		log.Fatal(err)
	}

	if *streams > 0 {
		if err := loadgen(os.Stdout, h, kinds, *seed, *streams, *points, *batch, *rate); err != nil {
			log.Fatal(err)
		}
		return
	}

	log.Printf("etsc-serve listening on %s (workers=%d policy=%s kinds=%s)",
		*addr, *workers, pol, kindNames(kinds))
	log.Fatal(http.ListenAndServe(*addr, newServer(h, kinds)))
}

func kindNames(kinds []hub.Kind) string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.Name
	}
	return strings.Join(names, ",")
}

// maxPushBody bounds one /push request's body (~32 MB ≈ 1.5M points as
// text) so a single client cannot balloon process memory.
const maxPushBody = 32 << 20

// server is the HTTP face of the hub: lazy stream attachment plus JSON
// views over Snapshot/Stats/Detections.
type server struct {
	hub   *hub.Hub
	kinds map[string]hub.Kind
	deflt string

	mu       sync.Mutex
	attached map[string]bool
}

func newServer(h *hub.Hub, kinds []hub.Kind) *http.ServeMux {
	s := &server{hub: h, kinds: map[string]hub.Kind{}, deflt: kinds[0].Name, attached: map[string]bool{}}
	for _, k := range kinds {
		s.kinds[k.Name] = k
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/push", s.handlePush)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/streams", s.handleStreams)
	mux.HandleFunc("/detections", s.handleDetections)
	mux.HandleFunc("/detach", s.handleDetach)
	return mux
}

// ensure lazily attaches id with the pipeline named by kind.
func (s *server) ensure(id, kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attached[id] {
		return nil
	}
	if kind == "" {
		kind = s.deflt
	}
	k, ok := s.kinds[kind]
	if !ok {
		return fmt.Errorf("unknown kind %q (want one of %s)", kind, strings.Join(sortedKeys(s.kinds), ","))
	}
	if err := s.hub.Attach(id, k.Config); err != nil {
		return err
	}
	s.attached[id] = true
	return nil
}

func sortedKeys(m map[string]hub.Kind) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *server) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("stream")
	if id == "" {
		http.Error(w, "missing ?stream=", http.StatusBadRequest)
		return
	}
	// Parse the whole body before touching the hub: a rejected request
	// must have no side effect (no lazily attached ghost stream). The
	// body is size-capped so one request cannot balloon process memory.
	var batch []float64
	body := http.MaxBytesReader(w, r.Body, maxPushBody)
	sc := bufio.NewScanner(body)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad point %q: %v", sc.Text(), err), http.StatusBadRequest)
			return
		}
		batch = append(batch, v)
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body over %d bytes; split the batch", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.ensure(id, r.URL.Query().Get("kind")); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	err := s.hub.Push(id, batch)
	switch {
	case err == nil:
		writeJSON(w, map[string]any{"stream": id, "queued": len(batch)})
	case errors.Is(err, hub.ErrDropped):
		// Backpressure surfaced to the HTTP client as 429.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.hub.Stats())
}

// handleStreams reads the live snapshot without waiting for queues to
// drain — under sustained ingest a Flush here would park the handler until
// producers pause, making monitoring unavailable exactly when it matters.
func (s *server) handleStreams(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.hub.Snapshot())
}

func (s *server) handleDetections(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("stream")
	dets, err := s.hub.Detections(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"stream": id, "detections": dets})
}

func (s *server) handleDetach(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("stream")
	rep, err := s.hub.Detach(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.mu.Lock()
	delete(s.attached, id)
	s.mu.Unlock()
	writeJSON(w, rep)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("etsc-serve: encode: %v", err)
	}
}

// loadgen drives the hub with synthetic streams and reports capacity.
func loadgen(w *os.File, h *hub.Hub, kinds []hub.Kind, seed int64, streams, points, batchSize int, rate float64) error {
	if batchSize <= 0 {
		return fmt.Errorf("etsc-serve: -batch must be > 0, got %d", batchSize)
	}
	fmt.Fprintf(w, "load generator: %d streams × %d points, batch=%d, rate=%s\n",
		streams, points, batchSize, rateLabel(rate))

	gens, err := hub.DemoStreams(kinds, seed, streams, points)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if err := h.Attach(g.ID, g.Config); err != nil {
			return err
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		dropped   int
		total     int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for _, g := range gens {
		wg.Add(1)
		go func(g hub.DemoStream) {
			defer wg.Done()
			var interval time.Duration
			if rate > 0 {
				interval = time.Duration(float64(batchSize) / rate * float64(time.Second))
			}
			next := time.Now()
			local := make([]time.Duration, 0, len(g.Data)/batchSize+1)
			drops := 0
			var pushed int64
			for off := 0; off < len(g.Data); off += batchSize {
				end := off + batchSize
				if end > len(g.Data) {
					end = len(g.Data)
				}
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				t0 := time.Now()
				err := h.Push(g.ID, g.Data[off:end])
				local = append(local, time.Since(t0))
				if err != nil {
					drops++
					continue
				}
				pushed += int64(end - off)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			dropped += drops
			total += pushed
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	h.Flush()
	ingestWall := time.Since(start)

	reports, err := h.Close()
	if err != nil {
		return err
	}
	perKind := map[string]*struct{ streams, dets, recanted, points int }{}
	for _, r := range reports {
		kind := strings.SplitN(r.ID, "-", 2)[0]
		pk := perKind[kind]
		if pk == nil {
			pk = &struct{ streams, dets, recanted, points int }{}
			perKind[kind] = pk
		}
		pk.streams++
		pk.dets += len(r.Detections)
		pk.recanted += r.Stats.Recanted
		pk.points += r.Stats.Position
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	fmt.Fprintf(w, "ingested %d points in %v — %.0f points/sec aggregate\n",
		total, ingestWall.Round(time.Millisecond), float64(total)/ingestWall.Seconds())
	fmt.Fprintf(w, "push latency: p50=%v p99=%v max=%v (%d pushes, %d rejected)\n",
		percentile(latencies, 0.50), percentile(latencies, 0.99),
		percentile(latencies, 1.0), len(latencies), dropped)
	for _, kind := range sortedKeys(kindMap(kinds)) {
		pk := perKind[kind]
		if pk == nil {
			continue
		}
		fmt.Fprintf(w, "kind %-9s %2d streams, %7d points, %5d detections (%d recanted)\n",
			kind, pk.streams, pk.points, pk.dets, pk.recanted)
	}
	return nil
}

func kindMap(kinds []hub.Kind) map[string]hub.Kind {
	m := map[string]hub.Kind{}
	for _, k := range kinds {
		m[k.Name] = k
	}
	return m
}

func rateLabel(rate float64) string {
	if rate <= 0 {
		return "unthrottled"
	}
	return fmt.Sprintf("%.0f pts/sec/stream", rate)
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)-1) * q)
	return sorted[i]
}
