// Etsc-serve runs the multi-stream monitoring hub as a service: an HTTP
// API multiplexing any number of telemetry streams through the shared
// engine, or — with -streams — a self-contained load generator that
// drives the hub (in-process, or a remote server via -target) with
// synthetic telemetry and reports throughput, ingest latency, and
// detection tallies.
//
// Server mode:
//
//	go run ./cmd/etsc-serve -addr :8080
//
//	# the versioned API (structured JSON errors, explicit registration):
//	curl -X POST localhost:8080/v1/streams -d '{"id":"coop7","kind":"chicken"}'
//	curl -X POST localhost:8080/v1/streams/coop7/push -d '{"points":[0.1,0.4,-0.2]}'
//	curl 'localhost:8080/v1/streams'                       # list + per-stream stats
//	curl 'localhost:8080/v1/stats'                         # hub totals
//	curl 'localhost:8080/v1/detections?stream=coop7&since=0'
//	curl -N localhost:8080/v1/streams/coop7/watch          # live SSE detection feed
//	curl localhost:8080/metrics                            # Prometheus text (-metrics=false disables)
//	curl -X DELETE localhost:8080/v1/streams/coop7         # final report
//
// Stream registration takes a kind (words, gunpoint, chicken — see
// hub.DemoKinds) or additionally a declarative classifier spec trained on
// the kind's dataset, e.g. {"kind":"chicken","spec":"fixedprefix:at=40"}.
// The unversioned pre-/v1 routes (/push, /stats, /streams, /detections,
// /detach — text bodies, lazy attach) remain served as frozen aliases.
//
// On SIGINT/SIGTERM the server stops accepting requests, drains every
// stream queue through hub.Close, and prints a final stats line — no
// batch is lost mid-shutdown.
//
// Load-generator mode:
//
//	go run ./cmd/etsc-serve -streams 24 -points 20000 -rate 5000 -workers 8
//	go run ./cmd/etsc-serve -streams 8 -target http://coop-farm:8080
//
// runs -streams concurrent pushers round-robined over the three demo
// kinds, each pushing -points points in -batch sized batches, paced at
// -rate points/sec per stream (0 = as fast as accepted), then prints
// aggregate throughput, p50/p99 push latency, and per-kind detection
// tallies. Without -target the hub is driven in process; with -target the
// same workload flows through the typed /v1 client against a remote
// server.
//
// In both modes -traincache warm-starts the demo detectors through shared
// memoized training contexts (hub.DemoKindsShared): identical pipelines,
// faster startup — every stream of a kind shares the one trained detector
// regardless. -spec kind=algo:key=value,… replaces a kind's detector at
// startup with one trained from the given registry spec.
//
// Sharding:
//
//	go run ./cmd/etsc-serve -addr :8080 -shards 16
//
// partitions the hub into -shards independent shards (own mutex, stream
// map, queues, worker pool), routed by the documented FNV-1a hash of the
// stream ID — pushes to streams on different shards never contend on a
// lock. Transcripts are byte-identical to the flat hub; /v1/stats gains a
// per-shard breakdown (queue backlog, drops) and StreamInfo reports each
// stream's owning shard.
//
// Backpressure is selected with -policy: block (default) stalls a full
// queue's producer, drop answers 429 + Retry-After, and shed accepts the
// push but evicts the stream's oldest queued batch, counting per-stream
// sheds in stats and /metrics instead of refusing ingest.
//
// Soak/chaos mode:
//
//	go run ./cmd/etsc-serve -soak         # full battery
//	go run ./cmd/etsc-serve -soak -quick  # CI smoke size
//
// stands up a shed-policy server on loopback and abuses it — bursty
// pushers, slow/stalled/disconnect-and-resume watchers, one deliberately
// overloaded stream — then verifies watcher transcripts against final
// reports, zero rejections on healthy streams, explicit shed counters on
// the abused one, and a lint-clean /metrics body (see soak.go).
//
// Scaling-proof mode:
//
//	go run ./cmd/etsc-serve -scaling -streams 100000 -points 2000000
//
// sweeps shards {1,4,16} × stream counts up to -streams (capped at
// 100000, -points is the total ingest budget per cell) over deliberately
// quiet pipelines, printing aggregate and per-shard throughput plus
// p50/p99 push latency for every cell — the shard-scaling curve on this
// machine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"etsc/internal/client"
	"etsc/internal/dataset"
	"etsc/internal/etsc"
	"etsc/internal/hub"
	"etsc/internal/serve"
	"etsc/internal/ts"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address (server mode)")
		workers    = flag.Int("workers", 0, "hub worker pool size (0 = NumCPU)")
		queue      = flag.Int("queue", 0, "per-stream queue depth in batches (0 = default)")
		policy     = flag.String("policy", "block", "backpressure policy: block, drop, or shed")
		seed       = flag.Int64("seed", 1, "scenario seed for the demo pipelines")
		streams    = flag.Int("streams", 0, "load-generator mode: number of streams (0 = serve HTTP)")
		points     = flag.Int("points", 20_000, "load generator: points per stream")
		batch      = flag.Int("batch", 64, "load generator: points per Push")
		rate       = flag.Float64("rate", 0, "load generator: points/sec per stream (0 = unthrottled)")
		target     = flag.String("target", "", "load generator: drive a remote etsc-serve /v1 API at this base URL instead of an in-process hub")
		traincache = flag.Bool("traincache", false, "warm-start the demo detectors through shared memoized training contexts (identical pipelines, faster startup)")
		engine     = flag.String("engine", "pruned", "inference engine for every stream pipeline: pruned (lazy NN frontier) or eager (transcripts identical)")
		shards     = flag.Int("shards", 1, "number of independent hub shards routed by the stream-ID hash (1 = single flat hub)")
		scaling    = flag.Bool("scaling", false, "run the shard scaling sweep: shards {1,4,16} × stream counts up to -streams (capped at 100000; -points is the total ingest budget per cell), then exit")
		metricsOn  = flag.Bool("metrics", true, "server mode: expose Prometheus text exposition at GET /metrics")
		ckptDir    = flag.String("checkpoint", "", "server mode: durable checkpoint directory — boot restores every stream found there, then a background checkpointer persists all streams periodically and at shutdown")
		ckptEvery  = flag.Duration("checkpoint-interval", 30*time.Second, "server mode: interval between background checkpoint generations (with -checkpoint)")
		soak       = flag.Bool("soak", false, "run the soak/chaos battery — shed-policy server, bursty pushers, slow/stalled/reconnecting watchers — then exit")
		quick      = flag.Bool("quick", false, "soak: CI-smoke sizes (seconds, not minutes)")
	)
	specOverrides := map[string]string{}
	flag.Func("spec", "replace a kind's detector: kind=algo:key=value,... (repeatable; trained on the kind's dataset)", func(s string) error {
		kind, spec, ok := strings.Cut(s, "=")
		if !ok || kind == "" || spec == "" {
			return fmt.Errorf("want kind=algo:key=value,..., got %q", s)
		}
		specOverrides[strings.TrimSpace(kind)] = strings.TrimSpace(spec)
		return nil
	})
	flag.Parse()

	pol, err := hub.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("-policy: %v", err)
	}
	mode, err := etsc.ParseEngineMode(*engine)
	if err != nil {
		log.Fatal(err)
	}
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", *shards)
	}

	if *scaling {
		if *target != "" || len(specOverrides) > 0 || *traincache {
			log.Fatal("-scaling is a self-contained local sweep; -target/-spec/-traincache do not apply")
		}
		if err := scalingSweep(os.Stdout, *workers, *queue, pol, *streams, *points, *batch); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *target != "" {
		if *streams <= 0 {
			log.Fatal("-target needs -streams > 0 (remote load-generator mode)")
		}
		// Pipeline configuration lives on the remote server; refusing
		// these flags beats silently ignoring them.
		if len(specOverrides) > 0 || *traincache || mode != etsc.Pruned {
			log.Fatal("-spec/-traincache/-engine configure local pipelines and do not apply with -target; set them on the remote server instead")
		}
		// The remote server owns pipelines and training; only stream
		// *data* is generated locally, so plain DemoKinds suffices.
		kinds, err := hub.DemoKinds(*seed)
		if err != nil {
			log.Fatal(err)
		}
		if err := loadgenRemote(os.Stdout, *target, kinds, *seed, *streams, *points, *batch, *rate); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Warm start: every stream of a kind shares one trained detector either
	// way; -traincache additionally trains the kinds concurrently through
	// shared memoized contexts, which only changes startup wall-clock time
	// (TestDemoKindsSharedMatchesDemoKinds pins the transcripts).
	trainStart := time.Now()
	var kinds []hub.Kind
	if *traincache {
		kinds, err = hub.DemoKindsShared(*seed, *workers)
	} else {
		kinds, err = hub.DemoKinds(*seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	// The engine mode is per-pipeline configuration: apply it to every kind
	// so lazily attached streams inherit it (transcripts are identical
	// either way; the knob trades CPU only).
	for i := range kinds {
		kinds[i].Config.Engine = mode
	}
	// -spec overrides retrain named kinds' detectors through the registry.
	for i := range kinds {
		spec, ok := specOverrides[kinds[i].Name]
		if !ok {
			continue
		}
		clf, err := etsc.TrainSpecString(spec, kinds[i].TrainSet)
		if err != nil {
			log.Fatalf("-spec %s=%s: %v", kinds[i].Name, spec, err)
		}
		kinds[i].Config.Classifier = clf
		kinds[i].Spec = etsc.MustParseSpec(spec)
		delete(specOverrides, kinds[i].Name)
	}
	for kind := range specOverrides {
		log.Fatalf("-spec %s=...: no such kind", kind)
	}
	log.Printf("etsc-serve: trained %d demo kinds in %v (traincache=%v engine=%s)",
		len(kinds), time.Since(trainStart).Round(time.Millisecond), *traincache, mode)

	if *soak {
		if err := soakRun(os.Stdout, kinds, *seed, *quick); err != nil {
			log.Fatal(err)
		}
		return
	}
	// -shards 1 keeps the original flat hub (and the pre-shard /v1/stats
	// body, with no per-shard rows); >1 partitions streams by the ID hash.
	hubCfg := hub.Config{Workers: *workers, QueueDepth: *queue, Policy: pol}
	var (
		h  ingestHub
		sh *hub.ShardedHub
	)
	if *shards > 1 {
		sh, err = hub.NewSharded(hub.ShardedConfig{Shards: *shards, Config: hubCfg})
		h = sh
	} else {
		h, err = hub.New(hubCfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *streams > 0 {
		if err := loadgen(os.Stdout, h, kinds, *seed, *streams, *points, *batch, *rate); err != nil {
			log.Fatal(err)
		}
		return
	}

	var srv *serve.Server
	if sh != nil {
		srv, err = serve.NewSharded(sh, kinds)
	} else {
		srv, err = serve.New(h.(*hub.Hub), kinds)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *metricsOn {
		// One registry feeds both halves: the hub's hot-path instruments and
		// the serve layer's scrape-time families.
		reg := srv.EnableMetrics(nil)
		if sh != nil {
			sh.SetMetrics(reg)
		} else {
			h.(*hub.Hub).SetMetrics(reg)
		}
	}
	// Durable state: restore whatever the last run checkpointed BEFORE the
	// listener opens (clients must never race a half-restored fleet), then
	// keep checkpointing in the background. Corrupt or stale files degrade
	// to counted fresh-start fallbacks, never a failed boot.
	var cp *serve.Checkpointer
	if *ckptDir != "" {
		st, err := srv.RestoreFromDir(*ckptDir, nil)
		if err != nil {
			log.Fatalf("etsc-serve: -checkpoint %s: %v", *ckptDir, err)
		}
		log.Printf("etsc-serve: checkpoint restore from %s — %d restored, %d fresh-start fallbacks, %d skipped",
			*ckptDir, st.Restored, st.Fallbacks, st.Skipped)
		if cp, err = serve.NewCheckpointer(srv, *ckptDir, *ckptEvery); err != nil {
			log.Fatalf("etsc-serve: -checkpoint %s: %v", *ckptDir, err)
		}
		cp.Start()
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// Graceful shutdown: SIGINT/SIGTERM stops the listener, drains every
	// stream queue through hub.Close (no batch is dropped mid-shutdown),
	// and prints a final stats line.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("etsc-serve listening on %s (shards=%d workers=%d policy=%s kinds=%s)",
		*addr, *shards, *workers, pol, strings.Join(srv.KindNames(), ","))

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("etsc-serve: signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("etsc-serve: http shutdown: %v", err)
	}
	// Final checkpoint generation: stop the periodic loop, drain every
	// queue, then persist each stream at its fully-drained position — the
	// next boot resumes with zero replay.
	if cp != nil {
		cp.Stop()
		h.Flush()
		if err := cp.Sync(); err != nil {
			log.Printf("etsc-serve: final checkpoint: %v", err)
		} else {
			log.Printf("etsc-serve: final checkpoint generation written to %s", *ckptDir)
		}
	}
	// Per-shard load before the drain clears the maps.
	if sh != nil {
		for _, st := range sh.ShardTotals() {
			log.Printf("etsc-serve: shard %2d — %d streams, %d points, %d queued batches, %d dropped",
				st.Shard, st.Streams, st.Points, st.QueuedBatches, st.DroppedBatches)
		}
	}
	reports, err := h.Close()
	if err != nil {
		log.Fatalf("etsc-serve: hub close: %v", err)
	}
	var points64, dropped int64
	var dets, recanted int
	for _, r := range reports {
		points64 += r.Stats.Points
		dropped += r.Stats.DroppedPoints
		dets += len(r.Detections)
		recanted += r.Stats.Recanted
	}
	log.Printf("etsc-serve: drained %d streams — %d points processed, %d dropped, %d detections (%d recanted)",
		len(reports), points64, dropped, dets, recanted)
}

// ingestHub is the hub surface the load generator and the shutdown drain
// need; *hub.Hub and *hub.ShardedHub both satisfy it.
type ingestHub interface {
	Attach(id string, sc hub.StreamConfig) error
	Push(id string, points []float64) error
	Flush()
	Close() ([]hub.StreamReport, error)
}

// loadgen drives the hub with synthetic streams and reports capacity.
func loadgen(w *os.File, h ingestHub, kinds []hub.Kind, seed int64, streams, points, batchSize int, rate float64) error {
	if batchSize <= 0 {
		return fmt.Errorf("etsc-serve: -batch must be > 0, got %d", batchSize)
	}
	fmt.Fprintf(w, "load generator: %d streams × %d points, batch=%d, rate=%s\n",
		streams, points, batchSize, rateLabel(rate))

	gens, err := hub.DemoStreams(kinds, seed, streams, points)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if err := h.Attach(g.ID, g.Config); err != nil {
			return err
		}
	}

	res := driveStreams(gens, batchSize, rate, func(g hub.DemoStream, batch []float64) (string, error) {
		return "", h.Push(g.ID, batch)
	})
	h.Flush()
	ingestWall := time.Since(res.start)

	reports, err := h.Close()
	if err != nil {
		return err
	}
	printLoadReport(w, kinds, res, ingestWall, reports)
	return nil
}

// loadgenRemote is loadgen over the wire: the same demo workload pushed
// through the typed /v1 client against a running etsc-serve at base.
func loadgenRemote(w *os.File, base string, kinds []hub.Kind, seed int64, streams, points, batchSize int, rate float64) error {
	if batchSize <= 0 {
		return fmt.Errorf("etsc-serve: -batch must be > 0, got %d", batchSize)
	}
	fmt.Fprintf(w, "remote load generator → %s: %d streams × %d points, batch=%d, rate=%s\n",
		base, streams, points, batchSize, rateLabel(rate))

	// Retries cover transient transport faults and 5xx on the idempotent
	// calls (list/stats/detach); pushes stay single-shot so backpressure
	// and drop accounting reflect what the server actually accepted.
	c, err := client.New(base, client.WithRetry(4, 200*time.Millisecond))
	if err != nil {
		return err
	}
	ctx := context.Background()
	gens, err := hub.DemoStreams(kinds, seed, streams, points)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: g.Kind}); err != nil {
			return fmt.Errorf("register %s: %w", g.ID, err)
		}
	}

	res := driveStreams(gens, batchSize, rate, func(g hub.DemoStream, batch []float64) (string, error) {
		resp, err := c.Push(ctx, g.ID, batch)
		if err != nil && !client.IsBackpressure(err) {
			// Only backpressure is a countable rejection; anything else
			// (connection loss, unknown stream) must abort the run, not
			// masquerade as drops in the report.
			return "", fmt.Errorf("%w: %s: %v", errPushFatal, g.ID, err)
		}
		// Backend is the router's owner echo (X-Etsc-Backend); empty when
		// the target is a single node, which suppresses the breakdown.
		return resp.Backend, err
	})
	if res.err != nil {
		return res.err
	}
	ingestWall := time.Since(res.start)

	// Detach every stream for its final report — the remote equivalent of
	// hub.Close's drain.
	reports := make([]hub.StreamReport, 0, len(gens))
	for _, g := range gens {
		rep, err := c.DeleteStream(ctx, g.ID)
		if err != nil {
			return fmt.Errorf("detach %s: %w", g.ID, err)
		}
		reports = append(reports, rep)
	}
	printLoadReport(w, kinds, res, ingestWall, reports)
	return nil
}

// errPushFatal marks a push failure that should abort the load run
// instead of counting as a backpressure rejection.
var errPushFatal = errors.New("etsc-serve: load generator push failed")

// loadResult aggregates what the pushers measured. perBackend splits
// the latency samples by the owner backend a routing front tier echoed
// per push (empty when the target was a single node).
type loadResult struct {
	start      time.Time
	latencies  []time.Duration
	perBackend map[string][]time.Duration
	rejected   int
	total      int64
	err        error // first errPushFatal-wrapped failure, if any
}

// driveStreams runs one goroutine per stream, pushing batches through
// push with optional pacing, and aggregates latencies and tallies. push
// returns the serving backend's name ("" when there is no front tier);
// non-empty names feed the per-backend latency breakdown.
func driveStreams(gens []hub.DemoStream, batchSize int, rate float64, push func(hub.DemoStream, []float64) (string, error)) loadResult {
	var (
		mu  sync.Mutex
		res loadResult
	)
	res.start = time.Now()
	var wg sync.WaitGroup
	for _, g := range gens {
		wg.Add(1)
		go func(g hub.DemoStream) {
			defer wg.Done()
			var interval time.Duration
			if rate > 0 {
				interval = time.Duration(float64(batchSize) / rate * float64(time.Second))
			}
			next := time.Now()
			local := make([]time.Duration, 0, len(g.Data)/batchSize+1)
			localBy := map[string][]time.Duration{}
			rejected := 0
			var pushed int64
			for off := 0; off < len(g.Data); off += batchSize {
				end := off + batchSize
				if end > len(g.Data) {
					end = len(g.Data)
				}
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				t0 := time.Now()
				backend, err := push(g, g.Data[off:end])
				lat := time.Since(t0)
				local = append(local, lat)
				if backend != "" {
					localBy[backend] = append(localBy[backend], lat)
				}
				if errors.Is(err, errPushFatal) {
					mu.Lock()
					if res.err == nil {
						res.err = err
					}
					mu.Unlock()
					break
				}
				if err != nil {
					rejected++
					continue
				}
				pushed += int64(end - off)
			}
			mu.Lock()
			res.latencies = append(res.latencies, local...)
			for name, lats := range localBy {
				if res.perBackend == nil {
					res.perBackend = map[string][]time.Duration{}
				}
				res.perBackend[name] = append(res.perBackend[name], lats...)
			}
			res.rejected += rejected
			res.total += pushed
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return res
}

// printLoadReport renders throughput, latency percentiles, and per-kind
// tallies. With an empty sample set (every push rejected, or zero
// streams) it reports n=0 instead of misleading zero percentiles.
func printLoadReport(w *os.File, kinds []hub.Kind, res loadResult, ingestWall time.Duration, reports []hub.StreamReport) {
	perKind := map[string]*struct{ streams, dets, recanted, points int }{}
	for _, r := range reports {
		kind := strings.SplitN(r.ID, "-", 2)[0]
		pk := perKind[kind]
		if pk == nil {
			pk = &struct{ streams, dets, recanted, points int }{}
			perKind[kind] = pk
		}
		pk.streams++
		pk.dets += len(r.Detections)
		pk.recanted += r.Stats.Recanted
		pk.points += r.Stats.Position
	}

	secs := ingestWall.Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(res.total) / secs
	}
	fmt.Fprintf(w, "ingested %d points in %v — %.0f points/sec aggregate\n",
		res.total, ingestWall.Round(time.Millisecond), rate)
	sort.Slice(res.latencies, func(a, b int) bool { return res.latencies[a] < res.latencies[b] })
	if len(res.latencies) == 0 {
		fmt.Fprintf(w, "push latency: n=0 (no pushes sampled; %d rejected)\n", res.rejected)
	} else {
		fmt.Fprintf(w, "push latency: p50=%v p99=%v max=%v (%d pushes, %d rejected)\n",
			percentile(res.latencies, 0.50), percentile(res.latencies, 0.99),
			percentile(res.latencies, 1.0), len(res.latencies), res.rejected)
	}
	// Per-backend breakdown: present only when the target echoed owner
	// backends (i.e. the pushes went through a routing front tier).
	if len(res.perBackend) > 0 {
		names := make([]string, 0, len(res.perBackend))
		for name := range res.perBackend {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			lats := res.perBackend[name]
			sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
			fmt.Fprintf(w, "backend %-12s %6d pushes, p50=%v p99=%v max=%v\n",
				name, len(lats),
				percentile(lats, 0.50), percentile(lats, 0.99), percentile(lats, 1.0))
		}
	}
	names := make([]string, 0, len(kinds))
	for _, k := range kinds {
		names = append(names, k.Name)
	}
	sort.Strings(names)
	for _, kind := range names {
		pk := perKind[kind]
		if pk == nil {
			continue
		}
		fmt.Fprintf(w, "kind %-9s %2d streams, %7d points, %5d detections (%d recanted)\n",
			kind, pk.streams, pk.points, pk.dets, pk.recanted)
	}
}

func rateLabel(rate float64) string {
	if rate <= 0 {
		return "unthrottled"
	}
	return fmt.Sprintf("%.0f pts/sec/stream", rate)
}

// quietPipeline builds a deliberately cheap stream pipeline for the
// scaling sweep: a FixedPrefix detector over two constant exemplars with
// the evaluation stride pushed to the exemplar length, so the drain does a
// handful of comparisons per seriesLen points and the measurement isolates
// the ingest path — routing, queueing, lock contention — rather than
// classifier CPU.
func quietPipeline(seriesLen int) (hub.StreamConfig, error) {
	mk := func(level float64) dataset.Instance {
		s := make(ts.Series, seriesLen)
		for i := range s {
			s[i] = level
		}
		return dataset.Instance{Label: int(level) + 2, Series: s}
	}
	d, err := dataset.New("quiet", []dataset.Instance{mk(-1), mk(1)})
	if err != nil {
		return hub.StreamConfig{}, err
	}
	clf, err := etsc.NewFixedPrefix(d, seriesLen, false)
	if err != nil {
		return hub.StreamConfig{}, err
	}
	return hub.StreamConfig{Classifier: clf, Stride: seriesLen, Step: 8}, nil
}

// scalingSweep is the shard-scaling proof: for every cell in shards
// {1,4,16} × stream counts {max/100, max/10, max}, attach that many quiet
// streams, split the fixed total ingest budget across them, hammer the hub
// from 2×GOMAXPROCS pusher goroutines, and print aggregate + per-shard
// throughput and push-latency percentiles. Every stream replays slices of
// one shared rendered series, so the sweep's memory footprint stays flat
// as the stream count grows to 100k.
func scalingSweep(w *os.File, workers, queueDepth int, pol hub.Policy, maxStreams, totalPoints, batchSize int) error {
	if batchSize <= 0 {
		return fmt.Errorf("etsc-serve: -batch must be > 0, got %d", batchSize)
	}
	if maxStreams <= 0 {
		maxStreams = 10_000
	}
	if maxStreams > 100_000 {
		maxStreams = 100_000
	}
	if totalPoints < batchSize {
		totalPoints = batchSize
	}
	const seriesLen = 512
	sc, err := quietPipeline(seriesLen)
	if err != nil {
		return err
	}
	data := make([]float64, totalPoints)
	for i := range data {
		data[i] = float64(i%7) * 0.25
	}
	pushers := 2 * runtime.GOMAXPROCS(0)
	fmt.Fprintf(w, "scaling sweep: %d pushers, workers=%d policy=%s batch=%d, %d-point budget per cell\n",
		pushers, workers, pol, batchSize, totalPoints)

	var streamCounts []int
	for _, n := range []int{maxStreams / 100, maxStreams / 10, maxStreams} {
		if n < 1 {
			n = 1
		}
		if len(streamCounts) == 0 || streamCounts[len(streamCounts)-1] != n {
			streamCounts = append(streamCounts, n)
		}
	}
	for _, ns := range streamCounts {
		for _, nsh := range []int{1, 4, 16} {
			if err := scalingCell(w, nsh, ns, workers, queueDepth, pol, data, batchSize, pushers, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// scalingCell runs one (shards, streams) configuration of the sweep.
func scalingCell(w *os.File, nShards, nStreams, workers, queueDepth int, pol hub.Policy, data []float64, batchSize, pushers int, sc hub.StreamConfig) error {
	sh, err := hub.NewSharded(hub.ShardedConfig{
		Shards: nShards,
		Config: hub.Config{Workers: workers, QueueDepth: queueDepth, Policy: pol},
	})
	if err != nil {
		return err
	}
	ids := make([]string, nStreams)
	for i := range ids {
		ids[i] = fmt.Sprintf("s-%06d", i)
		if err := sh.Attach(ids[i], sc); err != nil {
			return err
		}
	}
	perStream := len(data) / nStreams
	if perStream < batchSize {
		perStream = batchSize
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		total     int64
		pushErr   error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			local := make([]time.Duration, 0, (perStream/batchSize+1)*(nStreams/pushers+1))
			var pushed int64
			rej := 0
			for i := p; i < nStreams; i += pushers {
				for off := 0; off < perStream; off += batchSize {
					end := off + batchSize
					if end > perStream {
						end = perStream
					}
					t0 := time.Now()
					err := sh.Push(ids[i], data[off:end])
					local = append(local, time.Since(t0))
					switch {
					case err == nil:
						pushed += int64(end - off)
					case errors.Is(err, hub.ErrDropped):
						rej++
					default:
						mu.Lock()
						if pushErr == nil {
							pushErr = fmt.Errorf("push %s: %w", ids[i], err)
						}
						mu.Unlock()
						return
					}
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			total += pushed
			rejected += rej
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	if pushErr != nil {
		return pushErr
	}
	sh.Flush()
	wall := time.Since(start)

	// Per-shard load before Close clears the stream maps.
	perShard := sh.ShardTotals()
	if _, err := sh.Close(); err != nil {
		return err
	}

	secs := wall.Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(total) / secs
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	fmt.Fprintf(w, "shards=%2d streams=%6d: %9d pts in %8v — %9.0f pts/sec, p50=%v p99=%v, %d dropped batches\n",
		nShards, nStreams, total, wall.Round(time.Millisecond), rate,
		percentile(latencies, 0.50), percentile(latencies, 0.99), rejected)
	parts := make([]string, len(perShard))
	for i, st := range perShard {
		parts[i] = fmt.Sprintf("%d:%d", st.Shard, st.Points)
	}
	fmt.Fprintf(w, "  per-shard points: %s\n", strings.Join(parts, " "))
	return nil
}

// percentile reads the q-quantile of an ascending-sorted sample; callers
// must handle the empty case (printLoadReport reports n=0).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)-1) * q)
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
