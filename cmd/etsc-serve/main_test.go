package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"etsc/internal/hub"
	"etsc/internal/router"
	"etsc/internal/serve"
)

// TestServerRoundTrip drives the HTTP face end to end: lazy attach on
// first push, stats, snapshot, detections, detach.
func TestServerRoundTrip(t *testing.T) {
	kinds, err := hub.DemoKinds(3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hub.New(hub.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := serve.New(h, kinds)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Render a real chicken stream so the pipeline has something to chew.
	data, err := kinds[2].Gen(rand.New(rand.NewSource(42)), 3000)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, v := range data {
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		sb.WriteByte(' ')
	}
	resp, err := http.Post(srv.URL+"/push?stream=coop&kind=chicken", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}
	var pushed struct {
		Queued int `json:"queued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pushed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pushed.Queued != len(data) {
		t.Fatalf("queued %d points, pushed %d", pushed.Queued, len(data))
	}

	h.Flush() // the /streams handler deliberately does not wait for drains
	resp, err = http.Get(srv.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]hub.StreamStats
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap["coop"].Position != len(data) {
		t.Fatalf("snapshot position %d, want %d", snap["coop"].Position, len(data))
	}

	resp, err = http.Get(srv.URL + "/detections?stream=coop")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detections status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad inputs are 4xx, not 500s or silent accepts — and a rejected
	// push must not lazily attach a ghost stream.
	resp, err = http.Post(srv.URL+"/push?stream=ghost", "text/plain", strings.NewReader("not-a-float"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage push status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	snap = map[string]hub.StreamStats{}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := snap["ghost"]; ok {
		t.Error("rejected push attached stream \"ghost\"")
	}
	resp, err = http.Post(srv.URL+"/push?stream=x&kind=nope", "text/plain", strings.NewReader("1 2"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/detach?stream=coop", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep hub.StreamReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Stats.Position != len(data) {
		t.Fatalf("detach report position %d, want %d", rep.Stats.Position, len(data))
	}
	resp, err = http.Get(srv.URL + "/detections?stream=coop")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("detections after detach status %d, want 404", resp.StatusCode)
	}
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadgenSmoke runs the generator at a tiny size and checks it
// completes and reports.
func TestLoadgenSmoke(t *testing.T) {
	kinds, err := hub.DemoKinds(3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hub.New(hub.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.Create(filepath.Join(t.TempDir(), "loadgen.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := loadgen(tmp, h, kinds, 3, 3, 3000, 64, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"points/sec aggregate", "push latency", "kind chicken"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("loadgen report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadgenRemoteSmoke drives the same tiny workload through the typed
// /v1 client against an in-process server — the -target path end to end.
func TestLoadgenRemoteSmoke(t *testing.T) {
	kinds, err := hub.DemoKinds(3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hub.New(hub.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	handler, err := serve.New(h, kinds)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	tmp, err := os.Create(filepath.Join(t.TempDir(), "loadgen-remote.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := loadgenRemote(tmp, srv.URL, kinds, 3, 3, 3000, 64, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"remote load generator", "points/sec aggregate", "push latency", "kind chicken"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("remote loadgen report missing %q:\n%s", want, out)
		}
	}
	// A single node never echoes an owner backend, so no breakdown.
	if strings.Contains(string(out), "\nbackend ") {
		t.Errorf("single-node loadgen report has a per-backend breakdown:\n%s", out)
	}
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadgenRemoteRouterBreakdown points -target at a two-backend
// etsc-router: every push response carries the owner's X-Etsc-Backend
// echo, and the report must split latency per backend.
func TestLoadgenRemoteRouterBreakdown(t *testing.T) {
	kinds, err := hub.DemoKinds(3)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]router.BackendSpec, 2)
	for i := range specs {
		h, err := hub.New(hub.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		handler, err := serve.New(h, kinds)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(handler)
		defer srv.Close()
		specs[i] = router.BackendSpec{Name: "node-" + strconv.Itoa(i), URL: srv.URL}
	}
	rt, err := router.New(router.Config{Backends: specs})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	front := httptest.NewServer(rt)
	defer front.Close()

	tmp, err := os.Create(filepath.Join(t.TempDir(), "loadgen-router.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := loadgenRemote(tmp, front.URL, kinds, 3, 4, 3000, 64, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	// 4 streams over 2 backends: both must show up with their own
	// percentiles (FNV placement of the demo ids covers both for seed 3).
	seen := 0
	for _, name := range []string{"node-0", "node-1"} {
		if strings.Contains(string(out), "backend "+name) {
			seen++
		}
	}
	if seen == 0 {
		t.Errorf("router loadgen report has no per-backend breakdown:\n%s", out)
	}
	if !strings.Contains(string(out), "pushes, p50=") {
		t.Errorf("per-backend breakdown missing latency percentiles:\n%s", out)
	}
}

// TestSoakQuickSmoke runs the -soak -quick battery in process: chaos
// watchers and bursty pushers against a live shed-policy server, ending in
// an explicit PASS line with per-stream shed counters and a linted /metrics
// body.
func TestSoakQuickSmoke(t *testing.T) {
	kinds, err := hub.DemoKinds(3)
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.Create(filepath.Join(t.TempDir(), "soak.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := soakRun(tmp, kinds, 3, true); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"soak: metrics lint ok",
		"soak: stream abuse-0",
		"watch transcripts matched the final report on 4/4 healthy streams",
		"soak: PASS — zero ingest rejections on healthy streams",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("soak report missing %q:\n%s", want, out)
		}
	}
}

// TestPercentileEmpty pins the empty-sample guard: no panic, zero value.
func TestPercentileEmpty(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
}

// TestLoadgenShardedSmoke runs the in-process generator over a sharded
// hub — the -shards path of load-generator mode — and checks the report
// renders the same shape as the flat hub's.
func TestLoadgenShardedSmoke(t *testing.T) {
	kinds, err := hub.DemoKinds(3)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := hub.NewSharded(hub.ShardedConfig{Shards: 4, Config: hub.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.Create(filepath.Join(t.TempDir(), "loadgen-sharded.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := loadgen(tmp, sh, kinds, 3, 3, 3000, 64, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"points/sec aggregate", "push latency", "kind chicken"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("sharded loadgen report missing %q:\n%s", want, out)
		}
	}
}

// TestScalingSweepSmoke runs the -scaling sweep at a tiny size: all nine
// shard × stream cells complete and each prints its throughput line and
// per-shard breakdown.
func TestScalingSweepSmoke(t *testing.T) {
	tmp, err := os.Create(filepath.Join(t.TempDir(), "scaling.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := scalingSweep(tmp, 2, 0, hub.Block, 30, 6000, 64); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scaling sweep:", "shards= 1 streams=", "shards= 4 streams=", "shards=16 streams=    30", "per-shard points:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("scaling report missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(string(out), "pts/sec"); n != 9 {
		t.Errorf("scaling sweep printed %d cells, want 9:\n%s", n, out)
	}
}
