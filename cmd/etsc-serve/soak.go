// Soak/chaos mode (-soak): stand up a real shed-policy server on a loopback
// listener and abuse it the way production does — bursty pushers, slow and
// stalled watchers, watchers that disconnect mid-feed and resume at their
// cursor, and one deliberately overloaded stream forced to shed — then hold
// the system to its contracts: every healthy stream's watch transcripts
// (flaky, slow, and stalled alike) byte-identical to its final report, zero
// ingest rejections on healthy streams (shed absorbs overload instead of
// 429ing), explicit per-stream shed counters on the abused one, and a
// /metrics body that passes the exposition-format lint. -quick shrinks the
// workload to CI-smoke size.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"etsc/internal/client"
	"etsc/internal/etsc"
	"etsc/internal/hub"
	"etsc/internal/metrics"
	"etsc/internal/serve"
	"etsc/internal/stream"
)

// soakClassifier drains slowly on purpose so the abused stream's queue
// genuinely fills and the Shed policy has something to evict.
type soakClassifier struct{ delay time.Duration }

func (s soakClassifier) Name() string    { return "soakslow" }
func (s soakClassifier) FullLength() int { return 64 }
func (s soakClassifier) ClassifyPrefix(prefix []float64) etsc.Decision {
	time.Sleep(s.delay)
	return etsc.Decision{}
}
func (s soakClassifier) ForcedLabel(series []float64) int { return 0 }

func soakSlowKind(delay time.Duration) hub.Kind {
	return hub.Kind{
		Name:   "soakslow",
		Spec:   etsc.Spec{Algo: "soakslow"},
		Config: hub.StreamConfig{Classifier: soakClassifier{delay: delay}, Stride: 16, Step: 16},
	}
}

// soakWatchState is the reconnect-vs-delete handshake (same protocol the
// serve test battery uses): the flaky watcher publishes its cursor only
// after any forced reconnect completed, and stops reconnecting once stop is
// set, so the deleter can guarantee the final frames land on a live
// connection.
type soakWatchState struct {
	cursor atomic.Int64
	stop   atomic.Bool
}

// soakWatchResult is one watcher's collected feed.
type soakWatchResult struct {
	role string
	dets []stream.Detection
	err  error
}

// soakWatch consumes a stream's watch feed to the Final frame. delay
// throttles between frames (the slow watcher); stall pauses once before the
// second frame (the stalled watcher); reconnectEvery forces a
// disconnect+resume at the cursor every N frames while st allows it.
func soakWatch(ctx context.Context, c *client.Client, id, role string, delay, stall time.Duration, reconnectEvery int, st *soakWatchState) soakWatchResult {
	res := soakWatchResult{role: role}
	ws, err := c.Watch(ctx, id, 0)
	if err != nil {
		res.err = fmt.Errorf("%s watcher %s: %w", role, id, err)
		return res
	}
	defer func() {
		if ws != nil {
			ws.Close()
		}
	}()
	next, sinceReconnect := 0, 0
	for {
		f, err := ws.Next()
		if err != nil {
			res.err = fmt.Errorf("%s watcher %s: frame at cursor %d: %w", role, id, next, err)
			return res
		}
		if f.Final {
			return res
		}
		if f.Detection == nil || f.Index != next {
			res.err = fmt.Errorf("%s watcher %s: frame index %d at cursor %d", role, id, f.Index, next)
			return res
		}
		res.dets = append(res.dets, *f.Detection)
		next = f.Next
		if delay > 0 {
			time.Sleep(delay)
		}
		if stall > 0 && len(res.dets) == 1 {
			time.Sleep(stall) // go quiet mid-feed; the server must not care
		}
		sinceReconnect++
		if st != nil && reconnectEvery > 0 && sinceReconnect >= reconnectEvery && !st.stop.Load() {
			sinceReconnect = 0
			ws.Close()
			ws, err = c.Watch(ctx, id, next)
			if err != nil {
				res.err = fmt.Errorf("%s watcher %s: reconnect at %d: %w", role, id, next, err)
				return res
			}
		}
		if st != nil {
			st.cursor.Store(int64(next))
		}
	}
}

// soakRun executes the battery and writes the report to w. It returns an
// error if any contract was violated — transcripts diverging, healthy
// streams rejected or shedding, the abused stream not shedding, or a
// malformed /metrics body.
func soakRun(w *os.File, kinds []hub.Kind, seed int64, quick bool) error {
	healthy, points, abuseBatches := 6, 9_000, 120
	classifierDelay, stall := 3*time.Millisecond, 2*time.Second
	if quick {
		healthy, points, abuseBatches = 4, 3_000, 48
		classifierDelay, stall = 2*time.Millisecond, 300*time.Millisecond
	}
	const queueDepth, batchSize = 16, 64

	h, err := hub.New(hub.Config{Workers: 4, QueueDepth: queueDepth, Policy: hub.Shed})
	if err != nil {
		return err
	}
	served := append(append([]hub.Kind{}, kinds...), soakSlowKind(classifierDelay))
	srv, err := serve.New(h, served)
	if err != nil {
		return err
	}
	reg := srv.EnableMetrics(nil)
	h.SetMetrics(reg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	// Retries smooth transient transport faults on the idempotent calls
	// (watch reconnects, stats, detach). Plain pushes and 429s are never
	// retried by contract, so shed accounting stays exact.
	c, err := client.New(base, client.WithRetry(4, 100*time.Millisecond))
	if err != nil {
		return err
	}
	ctx := context.Background()

	fmt.Fprintf(w, "soak: %d healthy + 1 abused streams → %s (policy=shed depth=%d quick=%v)\n",
		healthy, base, queueDepth, quick)
	gens, err := hub.DemoStreams(kinds, seed, healthy, points)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: g.ID, Kind: g.Kind}); err != nil {
			return fmt.Errorf("register %s: %w", g.ID, err)
		}
	}
	const abuseID = "abuse-0"
	if _, err := c.CreateStream(ctx, client.CreateStreamRequest{ID: abuseID, Kind: "soakslow"}); err != nil {
		return fmt.Errorf("register %s: %w", abuseID, err)
	}

	// Chaos watchers on every healthy stream: a flaky one that disconnects
	// and resumes at its cursor, a slow consumer, and one that stalls cold
	// mid-feed. All three must still end with the complete transcript.
	states := make(map[string]*soakWatchState, healthy)
	results := make(map[string][]chan soakWatchResult, healthy)
	for _, g := range gens {
		st := &soakWatchState{}
		states[g.ID] = st
		chans := make([]chan soakWatchResult, 3)
		for i := range chans {
			chans[i] = make(chan soakWatchResult, 1)
		}
		results[g.ID] = chans
		go func(id string) { chans[0] <- soakWatch(ctx, c, id, "flaky", 0, 0, 3, st) }(g.ID)
		go func(id string) { chans[1] <- soakWatch(ctx, c, id, "slow", 2*time.Millisecond, 0, 0, nil) }(g.ID)
		go func(id string) { chans[2] <- soakWatch(ctx, c, id, "stalled", 0, stall, 0, nil) }(g.ID)
	}

	// Bursty pushers on the healthy streams: paced, but every seventh batch
	// arrives as a back-to-back burst. Under the shed policy none of this
	// may be rejected.
	var healthyRejected atomic.Int64
	pushErrs := make(chan error, healthy+1)
	for _, g := range gens {
		go func(g hub.DemoStream) {
			batchNo := 0
			for off := 0; off < len(g.Data); off += batchSize {
				end := min(off+batchSize, len(g.Data))
				if _, err := c.Push(ctx, g.ID, g.Data[off:end]); err != nil {
					if client.IsBackpressure(err) {
						healthyRejected.Add(1)
						continue
					}
					pushErrs <- fmt.Errorf("push %s: %w", g.ID, err)
					return
				}
				batchNo++
				if batchNo%7 != 0 { // burst every seventh batch
					time.Sleep(time.Millisecond)
				}
			}
			pushErrs <- nil
		}(g)
	}
	// The abuser slams batches unpaced at a drain that cannot keep up; the
	// hub must shed old batches instead of blocking or 429ing.
	go func() {
		data := make([]float64, batchSize)
		for i := range data {
			data[i] = float64(i % 5)
		}
		for b := 0; b < abuseBatches; b++ {
			if _, err := c.Push(ctx, abuseID, data); err != nil {
				pushErrs <- fmt.Errorf("push %s: %w", abuseID, err)
				return
			}
		}
		pushErrs <- nil
	}()
	var errs []error
	for i := 0; i < healthy+1; i++ {
		if err := <-pushErrs; err != nil {
			errs = append(errs, err)
		}
	}
	if errs != nil {
		return errors.Join(errs...)
	}
	h.Flush()

	// Scrape while every stream is still attached so the per-stream shed
	// families are visible, and lint the exposition format.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if err := metrics.Lint(strings.NewReader(string(body))); err != nil {
		errs = append(errs, fmt.Errorf("/metrics fails the format lint: %w", err))
	}
	for _, want := range []string{"etsc_hub_shed_batches_total", fmt.Sprintf("etsc_stream_shed_batches_total{stream=%q}", abuseID)} {
		if !strings.Contains(string(body), want) {
			errs = append(errs, fmt.Errorf("/metrics body missing %s", want))
		}
	}
	fmt.Fprintf(w, "soak: metrics lint ok (%d bytes)\n", len(body))

	// Settle, hand the watchers their final frames, and audit per stream.
	matched := 0
	for _, g := range gens {
		settled, err := c.Detections(ctx, g.ID, 1_000_000_000) // clamped: Next == settled
		if err != nil {
			return err
		}
		st := states[g.ID]
		deadline := time.Now().Add(60 * time.Second)
		for st.cursor.Load() < int64(settled.Next) {
			if time.Now().After(deadline) {
				return fmt.Errorf("flaky watcher on %s stuck at %d, settled %d", g.ID, st.cursor.Load(), settled.Next)
			}
			time.Sleep(time.Millisecond)
		}
		st.stop.Store(true)
		rep, err := c.DeleteStream(ctx, g.ID)
		if err != nil {
			return err
		}
		want, err := json.Marshal(rep.Detections)
		if err != nil {
			return err
		}
		ok := true
		for _, ch := range results[g.ID] {
			res := <-ch
			if res.err != nil {
				errs = append(errs, res.err)
				ok = false
				continue
			}
			got, err := json.Marshal(res.dets)
			if err != nil {
				return err
			}
			if string(got) != string(want) {
				errs = append(errs, fmt.Errorf("%s watcher %s: transcript diverges from final report (%d vs %d detections)",
					res.role, g.ID, len(res.dets), len(rep.Detections)))
				ok = false
			}
		}
		if ok {
			matched++
		}
		if rep.Stats.ShedBatches != 0 || rep.Stats.DroppedBatches != 0 {
			errs = append(errs, fmt.Errorf("healthy stream %s shed %d / dropped %d batches", g.ID, rep.Stats.ShedBatches, rep.Stats.DroppedBatches))
		}
		fmt.Fprintf(w, "soak: stream %-12s %7d points, %4d detections, shed %d batches (%d points)\n",
			g.ID, rep.Stats.Position, len(rep.Detections), rep.Stats.ShedBatches, rep.Stats.ShedPoints)
	}
	fmt.Fprintf(w, "soak: watch transcripts matched the final report on %d/%d healthy streams\n", matched, healthy)

	abuseRep, err := c.DeleteStream(ctx, abuseID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "soak: stream %-12s %7d points, %4d detections, shed %d batches (%d points)\n",
		abuseID, abuseRep.Stats.Position, len(abuseRep.Detections), abuseRep.Stats.ShedBatches, abuseRep.Stats.ShedPoints)
	if abuseRep.Stats.ShedBatches == 0 {
		errs = append(errs, fmt.Errorf("abused stream %s shed nothing — the overload never bit", abuseID))
	}
	if n := healthyRejected.Load(); n != 0 {
		errs = append(errs, fmt.Errorf("%d ingest rejections on healthy streams under the shed policy", n))
	}
	if _, err := h.Close(); err != nil {
		return err
	}
	if errs != nil {
		return errors.Join(errs...)
	}
	fmt.Fprintf(w, "soak: PASS — zero ingest rejections on healthy streams, %d batches shed on %s\n",
		abuseRep.Stats.ShedBatches, abuseID)
	return nil
}
