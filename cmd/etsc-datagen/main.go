// Command etsc-datagen writes the repository's synthetic datasets to disk
// in the UCR archive text format (label + tab-separated values, one
// exemplar per line), so they can be inspected or fed to other tools.
//
// Usage:
//
//	etsc-datagen -out DIR [-seed N] [-per-class N] [-dataset name]
//
// Datasets: gunpoint, catdog, gunpointwords, ecg, all (default).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"etsc/internal/dataset"
	"etsc/internal/synth"
)

func main() {
	out := flag.String("out", "testdata", "output directory")
	seed := flag.Int64("seed", 42, "generator seed")
	perClass := flag.Int("per-class", 30, "exemplars per class")
	which := flag.String("dataset", "all", "gunpoint | catdog | gunpointwords | ecg | all")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	gens := map[string]func() (*dataset.Dataset, error){
		"gunpoint": func() (*dataset.Dataset, error) {
			cfg := synth.DefaultGunPointConfig()
			cfg.PerClassSize = *perClass
			return synth.GunPoint(synth.NewRand(*seed), cfg)
		},
		"catdog": func() (*dataset.Dataset, error) {
			return synth.WordDataset(synth.NewRand(*seed), []string{"cat", "dog"},
				*perClass, 150, synth.DefaultWordConfig())
		},
		"gunpointwords": func() (*dataset.Dataset, error) {
			return synth.WordDataset(synth.NewRand(*seed), []string{"gun", "point"},
				*perClass, 150, synth.DefaultWordConfig())
		},
		"ecg": func() (*dataset.Dataset, error) {
			e, err := synth.ECG(synth.NewRand(*seed), synth.DefaultECGConfig(), 2**perClass, 2)
			if err != nil {
				return nil, err
			}
			return e.Beats(1, 125, true)
		},
	}

	names := []string{"gunpoint", "catdog", "gunpointwords", "ecg"}
	if *which != "all" {
		if _, ok := gens[*which]; !ok {
			log.Fatalf("unknown dataset %q", *which)
		}
		names = []string{*which}
	}

	for _, name := range names {
		d, err := gens[name]()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		path := filepath.Join(*out, name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Write(f); err != nil {
			f.Close()
			log.Fatalf("%s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d exemplars x %d points, classes %v\n",
			path, d.Len(), d.SeriesLen(), d.ClassCounts())
	}
}
